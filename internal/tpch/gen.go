// Package tpch generates the evaluation datasets of §8.3: a TPC-H
// subset (supplier, part, partsupp) at arbitrary scale with uniform
// (Z=0) or Zipf-skewed (Z=1) value distributions — standing in for
// dbgen plus the Chaudhuri-Narasayya skew generator [3] — and the
// Users table of Example 1 for the advertising workload.
//
// All generation is deterministic given the seed.
package tpch

import (
	"fmt"
	"math/rand"

	"acquire/internal/data"
)

// Config controls dataset generation.
type Config struct {
	// Rows is the partsupp cardinality — the paper's "table size"
	// knob (1K to 10M tuples). supplier and part scale as in TPC-H:
	// |partsupp| = 4·|part|, |part| = 5·|supplier| approximately.
	Rows int
	// Zipf is the skew parameter Z: 0 for uniform, 1 for the skewed
	// datasets of §8.4.4. Values in between interpolate.
	Zipf float64
	// Seed makes generation deterministic.
	Seed int64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Rows < 1 {
		return fmt.Errorf("tpch: Rows must be >= 1, got %d", c.Rows)
	}
	if c.Zipf < 0 {
		return fmt.Errorf("tpch: Zipf must be >= 0, got %v", c.Zipf)
	}
	return nil
}

// Domains of the generated attributes, mirroring TPC-H's dbgen ranges.
const (
	AcctBalMin     = -999.99
	AcctBalMax     = 9999.99
	RetailPriceMin = 900.0
	RetailPriceMax = 2098.99
	SizeMin        = 1
	SizeMax        = 50
	AvailQtyMin    = 1
	AvailQtyMax    = 9999
	SupplyCostMin  = 1.0
	SupplyCostMax  = 1000.0
)

// PartTypes mirrors TPC-H's p_type vocabulary (abbreviated).
var PartTypes = []string{
	"SMALL BURNISHED STEEL", "SMALL PLATED BRASS", "MEDIUM ANODIZED COPPER",
	"LARGE POLISHED NICKEL", "ECONOMY BRUSHED TIN", "STANDARD BURNISHED STEEL",
	"PROMO PLATED COPPER", "SMALL ANODIZED TIN",
}

// Generate builds the three-table TPC-H subset into a fresh catalog.
func Generate(cfg Config) (*data.Catalog, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cat := data.NewCatalog()
	rng := rand.New(rand.NewSource(cfg.Seed))

	nPS := cfg.Rows
	nPart := maxInt(nPS/4, 1)
	nSupp := maxInt(nPart/5, 1)

	skew := newSkewer(rng, cfg.Zipf)

	supp := data.NewTable("supplier", data.MustSchema(
		data.Column{Name: "s_suppkey", Type: data.Int64},
		data.Column{Name: "s_acctbal", Type: data.Float64},
		data.Column{Name: "s_nationkey", Type: data.Int64},
	))
	for i := 0; i < nSupp; i++ {
		bal := AcctBalMin + skew.unit()*(AcctBalMax-AcctBalMin)
		if err := supp.AppendRow(
			data.IntValue(int64(i+1)),
			data.FloatValue(round2(bal)),
			data.IntValue(int64(skew.intn(25))),
		); err != nil {
			return nil, err
		}
	}

	part := data.NewTable("part", data.MustSchema(
		data.Column{Name: "p_partkey", Type: data.Int64},
		data.Column{Name: "p_retailprice", Type: data.Float64},
		data.Column{Name: "p_size", Type: data.Int64},
		data.Column{Name: "p_type", Type: data.String},
	))
	for i := 0; i < nPart; i++ {
		price := RetailPriceMin + skew.unit()*(RetailPriceMax-RetailPriceMin)
		if err := part.AppendRow(
			data.IntValue(int64(i+1)),
			data.FloatValue(round2(price)),
			data.IntValue(int64(SizeMin+skew.intn(SizeMax-SizeMin+1))),
			data.StringValue(PartTypes[skew.intn(len(PartTypes))]),
		); err != nil {
			return nil, err
		}
	}

	ps := data.NewTable("partsupp", data.MustSchema(
		data.Column{Name: "ps_partkey", Type: data.Int64},
		data.Column{Name: "ps_suppkey", Type: data.Int64},
		data.Column{Name: "ps_availqty", Type: data.Int64},
		data.Column{Name: "ps_supplycost", Type: data.Float64},
	))
	for i := 0; i < nPS; i++ {
		cost := SupplyCostMin + skew.unit()*(SupplyCostMax-SupplyCostMin)
		if err := ps.AppendRow(
			data.IntValue(int64(i%nPart+1)),
			data.IntValue(int64(skew.intn(nSupp)+1)),
			data.IntValue(int64(AvailQtyMin+skew.intn(AvailQtyMax-AvailQtyMin+1))),
			data.FloatValue(round2(cost)),
		); err != nil {
			return nil, err
		}
	}

	for _, t := range []*data.Table{supp, part, ps} {
		if err := cat.Register(t); err != nil {
			return nil, err
		}
	}
	return cat, nil
}

// UsersConfig controls the single-table advertising dataset (Example 1).
type UsersConfig struct {
	Rows int
	Zipf float64
	Seed int64
}

// Cities is the location vocabulary of the Users table.
var Cities = []string{
	"Boston", "New York", "Seattle", "Miami", "Austin",
	"Chicago", "Denver", "Portland",
}

// GenerateUsers builds the Users table of Example 1 into a catalog:
// users(u_id, age, income, distance, sessions, spend, gender, location).
// The five numeric demographics (age, income, distance-from-store,
// weekly sessions, monthly spend) give ad-campaign ACQs up to five
// refinable dimensions — the range Figure 9 sweeps.
func GenerateUsers(cfg UsersConfig) (*data.Catalog, error) {
	if cfg.Rows < 1 {
		return nil, fmt.Errorf("tpch: Rows must be >= 1, got %d", cfg.Rows)
	}
	if cfg.Zipf < 0 {
		return nil, fmt.Errorf("tpch: Zipf must be >= 0, got %v", cfg.Zipf)
	}
	cat := data.NewCatalog()
	rng := rand.New(rand.NewSource(cfg.Seed))
	skew := newSkewer(rng, cfg.Zipf)

	users := data.NewTable("users", data.MustSchema(
		data.Column{Name: "u_id", Type: data.Int64},
		data.Column{Name: "age", Type: data.Int64},
		data.Column{Name: "income", Type: data.Float64},
		data.Column{Name: "distance", Type: data.Float64},
		data.Column{Name: "sessions", Type: data.Float64},
		data.Column{Name: "spend", Type: data.Float64},
		data.Column{Name: "gender", Type: data.String},
		data.Column{Name: "location", Type: data.String},
	))
	genders := []string{"Women", "Men"}
	for i := 0; i < cfg.Rows; i++ {
		// Numeric demographics are hump-shaped (triangular, peak at
		// mid-domain) rather than uniform: real demographic attributes
		// concentrate around a mode, and — as in the paper's TPC-H
		// workloads — selective queries anchored below the mode gain
		// tuples superlinearly as they expand, which keeps satisfying
		// refinements shallow.
		if err := users.AppendRow(
			data.IntValue(int64(i+1)),
			data.IntValue(int64(18+int(skew.hump()*62))),
			data.FloatValue(round2(20000+skew.hump()*180000)),
			data.FloatValue(round2(skew.hump()*100)),
			data.FloatValue(round2(skew.hump()*50)),
			data.FloatValue(round2(skew.hump()*5000)),
			data.StringValue(genders[skew.intn(2)]),
			data.StringValue(Cities[skew.intn(len(Cities))]),
		); err != nil {
			return nil, err
		}
	}
	if err := cat.Register(users); err != nil {
		return nil, err
	}
	return cat, nil
}

// skewer draws uniform or Zipf-skewed samples. For Z > 0 the unit
// samples concentrate near 0 with Zipfian rank frequencies over 1024
// buckets — the standard way the Chaudhuri-Narasayya tool [3] skews
// TPC-H columns.
type skewer struct {
	rng  *rand.Rand
	zipf *rand.Zipf
	z    float64
}

const zipfBuckets = 1024

func newSkewer(rng *rand.Rand, z float64) *skewer {
	s := &skewer{rng: rng, z: z}
	if z > 0 {
		// rand.Zipf requires s > 1; interpolate: Z=1 maps to s=1.5,
		// larger Z skews harder. (The absolute parameterisation is a
		// substitution — see DESIGN.md §2 — only the presence of heavy
		// skew matters for §8.4.4's robustness check.)
		s.zipf = rand.NewZipf(rng, 1+z/2, 1, zipfBuckets-1)
	}
	return s
}

// unit returns a sample in [0, 1).
func (s *skewer) unit() float64 {
	if s.zipf == nil {
		return s.rng.Float64()
	}
	bucket := float64(s.zipf.Uint64())
	return (bucket + s.rng.Float64()) / zipfBuckets
}

// hump returns a sample in [0, 1) with a triangular density peaking at
// 0.5 (the mean of two uniforms) in the unskewed case; under Zipf skew
// it defers to the skewed unit sampler so §8.4.4's Z=1 datasets remain
// heavy at the low end.
func (s *skewer) hump() float64 {
	if s.zipf != nil {
		return s.unit()
	}
	return (s.rng.Float64() + s.rng.Float64()) / 2
}

// intn returns a sample in [0, n).
func (s *skewer) intn(n int) int {
	if n <= 1 {
		return 0
	}
	if s.zipf == nil {
		return s.rng.Intn(n)
	}
	v := int(s.unit() * float64(n))
	if v >= n {
		v = n - 1
	}
	return v
}

func round2(v float64) float64 { return float64(int64(v*100+0.5)) / 100 }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
