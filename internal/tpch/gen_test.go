package tpch

import (
	"math/rand"
	"testing"
)

func TestGenerateShapes(t *testing.T) {
	cat, err := Generate(Config{Rows: 400, Seed: 1})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	ps, err := cat.Table("partsupp")
	if err != nil {
		t.Fatal(err)
	}
	if ps.NumRows() != 400 {
		t.Errorf("partsupp rows = %d, want 400", ps.NumRows())
	}
	part, err := cat.Table("part")
	if err != nil {
		t.Fatal(err)
	}
	if part.NumRows() != 100 {
		t.Errorf("part rows = %d, want 100", part.NumRows())
	}
	supp, err := cat.Table("supplier")
	if err != nil {
		t.Fatal(err)
	}
	if supp.NumRows() != 20 {
		t.Errorf("supplier rows = %d, want 20", supp.NumRows())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Config{Rows: 100, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Config{Rows: 100, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	ta, _ := a.Table("part")
	tb, _ := b.Table("part")
	for r := 0; r < ta.NumRows(); r++ {
		for c := range ta.Schema().Columns {
			if ta.ValueAt(r, c) != tb.ValueAt(r, c) {
				t.Fatalf("row %d col %d differs across same-seed runs", r, c)
			}
		}
	}
	c2, err := Generate(Config{Rows: 100, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	tc, _ := c2.Table("part")
	same := true
	for r := 0; r < ta.NumRows() && same; r++ {
		if ta.ValueAt(r, 1) != tc.ValueAt(r, 1) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical p_retailprice columns")
	}
}

func TestGenerateDomains(t *testing.T) {
	cat, err := Generate(Config{Rows: 2000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	part, _ := cat.Table("part")
	priceOrd := part.Schema().Ordinal("p_retailprice")
	sizeOrd := part.Schema().Ordinal("p_size")
	for r := 0; r < part.NumRows(); r++ {
		price, _ := part.NumericAt(r, priceOrd)
		if price < RetailPriceMin || price > RetailPriceMax+0.01 {
			t.Fatalf("p_retailprice %v out of domain", price)
		}
		size, _ := part.NumericAt(r, sizeOrd)
		if size < SizeMin || size > SizeMax {
			t.Fatalf("p_size %v out of domain", size)
		}
	}
	ps, _ := cat.Table("partsupp")
	qtyOrd := ps.Schema().Ordinal("ps_availqty")
	pkOrd := ps.Schema().Ordinal("ps_partkey")
	skOrd := ps.Schema().Ordinal("ps_suppkey")
	nPart := part.NumRows()
	supp, _ := cat.Table("supplier")
	nSupp := supp.NumRows()
	for r := 0; r < ps.NumRows(); r++ {
		qty, _ := ps.NumericAt(r, qtyOrd)
		if qty < AvailQtyMin || qty > AvailQtyMax {
			t.Fatalf("ps_availqty %v out of domain", qty)
		}
		pk, _ := ps.NumericAt(r, pkOrd)
		if pk < 1 || pk > float64(nPart) {
			t.Fatalf("ps_partkey %v dangling (nPart=%d)", pk, nPart)
		}
		sk, _ := ps.NumericAt(r, skOrd)
		if sk < 1 || sk > float64(nSupp) {
			t.Fatalf("ps_suppkey %v dangling (nSupp=%d)", sk, nSupp)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{Rows: 0}); err == nil {
		t.Error("Rows=0: expected error")
	}
	if _, err := Generate(Config{Rows: 10, Zipf: -1}); err == nil {
		t.Error("negative Zipf: expected error")
	}
	if _, err := GenerateUsers(UsersConfig{Rows: 0}); err == nil {
		t.Error("users Rows=0: expected error")
	}
	if _, err := GenerateUsers(UsersConfig{Rows: 10, Zipf: -1}); err == nil {
		t.Error("users negative Zipf: expected error")
	}
}

func TestSkewConcentratesMass(t *testing.T) {
	uniform, err := Generate(Config{Rows: 4000, Seed: 5, Zipf: 0})
	if err != nil {
		t.Fatal(err)
	}
	skewed, err := Generate(Config{Rows: 4000, Seed: 5, Zipf: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Fraction of ps_availqty values in the lowest decile of the domain.
	lowDecile := func(catName string) float64 {
		var cat = uniform
		if catName == "skewed" {
			cat = skewed
		}
		ps, _ := cat.Table("partsupp")
		ord := ps.Schema().Ordinal("ps_availqty")
		cut := AvailQtyMin + (AvailQtyMax-AvailQtyMin)/10
		n := 0
		for r := 0; r < ps.NumRows(); r++ {
			v, _ := ps.NumericAt(r, ord)
			if v <= float64(cut) {
				n++
			}
		}
		return float64(n) / float64(ps.NumRows())
	}
	u, s := lowDecile("uniform"), lowDecile("skewed")
	if s < 2*u {
		t.Errorf("Zipf=1 low-decile mass %v should dominate uniform %v", s, u)
	}
}

func TestGenerateUsers(t *testing.T) {
	cat, err := GenerateUsers(UsersConfig{Rows: 500, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	users, err := cat.Table("users")
	if err != nil {
		t.Fatal(err)
	}
	if users.NumRows() != 500 {
		t.Errorf("users rows = %d", users.NumRows())
	}
	ageOrd := users.Schema().Ordinal("age")
	locOrd := users.Schema().Ordinal("location")
	cities := make(map[string]struct{}, len(Cities))
	for _, c := range Cities {
		cities[c] = struct{}{}
	}
	for r := 0; r < users.NumRows(); r++ {
		age, _ := users.NumericAt(r, ageOrd)
		if age < 18 || age > 79 {
			t.Fatalf("age %v out of range", age)
		}
		loc, _ := users.StringAt(r, locOrd)
		if _, ok := cities[loc]; !ok {
			t.Fatalf("unknown city %q", loc)
		}
	}
}

func TestSkewerIntnSmallN(t *testing.T) {
	s := newSkewer(rand.New(rand.NewSource(1)), 1)
	if got := s.intn(1); got != 0 {
		t.Errorf("intn(1) = %d", got)
	}
	for i := 0; i < 100; i++ {
		if v := s.intn(5); v < 0 || v >= 5 {
			t.Fatalf("intn(5) = %d out of range", v)
		}
	}
}
