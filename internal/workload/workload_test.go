package workload

import (
	"math"
	"testing"

	"acquire/internal/agg"
	"acquire/internal/exec"
	"acquire/internal/relq"
	"acquire/internal/tpch"
)

func usersEngine(t *testing.T, rows int) *exec.Engine {
	t.Helper()
	cat, err := tpch.GenerateUsers(tpch.UsersConfig{Rows: rows, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return exec.New(cat)
}

func tpchEngine(t *testing.T, rows int) *exec.Engine {
	t.Helper()
	cat, err := tpch.Generate(tpch.Config{Rows: rows, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return exec.New(cat)
}

func TestBuildUsersDimensionality(t *testing.T) {
	e := usersEngine(t, 1000)
	for dims := 1; dims <= 5; dims++ {
		q, err := Build(e, Spec{Kind: Users, Dims: dims, Agg: relq.AggCount})
		if err != nil {
			t.Fatalf("dims=%d: %v", dims, err)
		}
		if q.NumDims() != dims {
			t.Errorf("dims=%d: got %d", dims, q.NumDims())
		}
		if err := q.Validate(); err != nil {
			t.Errorf("dims=%d: %v", dims, err)
		}
	}
}

func TestBuildValidation(t *testing.T) {
	e := usersEngine(t, 100)
	bad := []Spec{
		{Kind: Users, Dims: 0, Agg: relq.AggCount},
		{Kind: Users, Dims: 6, Agg: relq.AggCount},
		{Kind: Users, Dims: 2, Agg: relq.AggSum},
		{Kind: Users, Dims: 2, Agg: relq.AggCount, RefinableJoin: true},
		{Kind: Kind(9), Dims: 2, Agg: relq.AggCount},
	}
	for i, s := range bad {
		if _, err := Build(e, s); err == nil {
			t.Errorf("spec %d: expected error", i)
		}
	}
	te := tpchEngine(t, 400)
	if _, err := Build(te, Spec{Kind: TPCH, Dims: 5, Agg: relq.AggSum}); err == nil {
		t.Error("5 select dims exceed the TPCH pool: expected error")
	}
	if _, err := Build(te, Spec{Kind: TPCH, Dims: 2, Agg: relq.AggMin}); err == nil {
		t.Error("MIN not in TPCH skeleton: expected error")
	}
}

func TestBuildTPCHShapes(t *testing.T) {
	e := tpchEngine(t, 2000)
	q, err := Build(e, Spec{Kind: TPCH, Dims: 3, Agg: relq.AggSum})
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Fixed) != 2 || q.NumDims() != 3 {
		t.Errorf("shape: fixed=%d dims=%d", len(q.Fixed), q.NumDims())
	}
	jq, err := Build(e, Spec{Kind: TPCH, Dims: 3, Agg: relq.AggSum, RefinableJoin: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(jq.Fixed) != 1 || jq.NumDims() != 3 {
		t.Errorf("join shape: fixed=%d dims=%d", len(jq.Fixed), jq.NumDims())
	}
	hasJoinDim := false
	for _, d := range jq.Dims {
		if d.Kind == relq.JoinBand {
			hasJoinDim = true
		}
	}
	if !hasJoinDim {
		t.Error("RefinableJoin did not produce a join dimension")
	}
}

func TestCalibrate(t *testing.T) {
	e := usersEngine(t, 5000)
	q, err := Build(e, Spec{Kind: Users, Dims: 3, Agg: relq.AggCount})
	if err != nil {
		t.Fatal(err)
	}
	actual, err := Calibrate(e, q, 0.3)
	if err != nil {
		t.Fatalf("Calibrate: %v", err)
	}
	if actual <= 0 {
		t.Fatalf("actual = %v", actual)
	}
	if math.Abs(q.Constraint.Target-actual/0.3) > 1e-9 {
		t.Errorf("target = %v, want %v", q.Constraint.Target, actual/0.3)
	}

	// Re-measuring the original query yields the calibrated ratio.
	spec, err := agg.SpecFor(q.Constraint)
	if err != nil {
		t.Fatal(err)
	}
	p, err := e.Aggregate(q, relq.PrefixRegion(make([]float64, q.NumDims())))
	if err != nil {
		t.Fatal(err)
	}
	ratio := spec.Final(p) / q.Constraint.Target
	if math.Abs(ratio-0.3) > 1e-9 {
		t.Errorf("measured ratio = %v, want 0.3", ratio)
	}

	if _, err := Calibrate(e, q, 0); err == nil {
		t.Error("ratio 0: expected error")
	}
	if _, err := Calibrate(e, q, 1.5); err == nil {
		t.Error("ratio > 1: expected error")
	}
}

func TestBuildCalibratedAllAggregates(t *testing.T) {
	e := tpchEngine(t, 4000)
	for _, a := range []relq.AggFunc{relq.AggCount, relq.AggSum, relq.AggMax} {
		q, err := BuildCalibrated(e, Spec{Kind: TPCH, Dims: 2, Agg: a, Ratio: 0.5})
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if q.Constraint.Target <= 0 {
			t.Errorf("%s target = %v", a, q.Constraint.Target)
		}
	}
}

func TestAttrOffsetVariesCombination(t *testing.T) {
	e := usersEngine(t, 1000)
	a, err := Build(e, Spec{Kind: Users, Dims: 2, Agg: relq.AggCount})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(e, Spec{Kind: Users, Dims: 2, Agg: relq.AggCount, AttrOffset: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.Dims[0].Col == b.Dims[0].Col {
		t.Errorf("offset did not rotate the attribute pool: %v vs %v", a.Dims[0].Col, b.Dims[0].Col)
	}
	te := tpchEngine(t, 800)
	c, err := Build(te, Spec{Kind: TPCH, Dims: 2, Agg: relq.AggSum, AttrOffset: 1})
	if err != nil {
		t.Fatal(err)
	}
	if c.Dims[0].Col.Column != "s_acctbal" {
		t.Errorf("tpch offset dim = %v", c.Dims[0].Col)
	}
}
