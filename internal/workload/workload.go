// Package workload constructs the calibrated test queries of §8.3:
// TPC-H queries "adapted to include only numeric range and join
// predicates", with the number of flexible predicates (dimensionality),
// the aggregate type, and the aggregate ratio A_actual/A_exp all as
// knobs. For each configuration, the original query's actual aggregate
// is measured once and the constraint target set to A_actual/ratio —
// exactly how the paper defines its ratio axis.
package workload

import (
	"fmt"
	"math"
	"sort"

	"acquire/internal/agg"
	"acquire/internal/exec"
	"acquire/internal/relq"
)

// Kind selects the query skeleton.
type Kind uint8

const (
	// Users is the single-table ad-campaign skeleton (Example 1 /
	// query Q1): COUNT over demographic range predicates. All four
	// methods — ACQUIRE and the three baselines — can run it, so it
	// carries the cross-method comparisons of Figures 8-10.
	Users Kind = iota + 1
	// TPCH is the three-table supply-chain skeleton (Example 2 /
	// query Q2): supplier ⋈ partsupp ⋈ part with NOREFINE equi-joins
	// and numeric range predicates; carries the SUM/MAX aggregate
	// experiments of Figure 11 and the join-refinement runs.
	TPCH
)

// Spec configures a workload query.
type Spec struct {
	Kind Kind
	// Dims is the number of flexible predicates (1-5).
	Dims int
	// Agg is the constraint aggregate (COUNT for Users; COUNT, SUM or
	// MAX for TPCH).
	Agg relq.AggFunc
	// Ratio is A_actual/A_exp: small ratios need large refinements.
	Ratio float64
	// RefinableJoin converts one NOREFINE equi-join of the TPCH
	// skeleton into a refinable join-band dimension (counted inside
	// Dims).
	RefinableJoin bool
	// AttrOffset rotates the predicate pool, varying "the combination
	// of attributes in these predicates" (§8.3) across runs.
	AttrOffset int
}

// usersPool lists the ad-campaign predicate columns. Bounds are chosen
// per configuration as empirical quantiles (see usersBoundMass) so the
// original query is selective — it undershoots its target and gains
// tuples superlinearly as it expands (§8.3's setup) — while still
// matching at least a few dozen rows at any dataset scale and
// dimensionality. (The paper's fixed 1M-row scale hides this concern;
// a scale-parameterised harness cannot.)
var usersPool = []string{"age", "income", "distance", "sessions", "spend"}

// usersBoundMass picks the per-dimension selectivity for a d-predicate
// query over `rows` tuples: the joint mass m^d must leave a usable base
// result (~200 rows), and m is clamped to [0.08, 0.5] so queries stay
// selective and refinable.
func usersBoundMass(rows, d int) float64 {
	m := math.Pow(200/float64(rows), 1/float64(d))
	if m < 0.08 {
		m = 0.08
	}
	if m > 0.5 {
		m = 0.5
	}
	return m
}

var tpchPool = []struct {
	table, col string
	bound      float64
}{
	{"part", "p_retailprice", 1300},
	{"supplier", "s_acctbal", 2500},
	{"partsupp", "ps_supplycost", 350},
	{"part", "p_size", 18},
}

// Build constructs the uncalibrated query for the spec.
func Build(e exec.Evaluator, spec Spec) (*relq.Query, error) {
	if spec.Dims < 1 || spec.Dims > 5 {
		return nil, fmt.Errorf("workload: Dims must be 1-5, got %d", spec.Dims)
	}
	switch spec.Kind {
	case Users:
		if spec.Agg != relq.AggCount {
			return nil, fmt.Errorf("workload: Users skeleton supports COUNT, got %s", spec.Agg)
		}
		if spec.RefinableJoin {
			return nil, fmt.Errorf("workload: Users skeleton has no joins")
		}
		return buildUsers(e, spec)
	case TPCH:
		return buildTPCH(e, spec)
	default:
		return nil, fmt.Errorf("workload: unknown kind %d", spec.Kind)
	}
}

func buildUsers(e exec.Evaluator, spec Spec) (*relq.Query, error) {
	q := &relq.Query{
		Tables:     []string{"users"},
		Constraint: relq.Constraint{Func: relq.AggCount, Op: relq.CmpEQ, Target: 1},
	}
	users, err := e.Catalog().Table("users")
	if err != nil {
		return nil, err
	}
	mass := usersBoundMass(users.NumRows(), spec.Dims)
	for i := 0; i < spec.Dims; i++ {
		col := usersPool[(i+spec.AttrOffset)%len(usersPool)]
		bound, err := quantile(e, "users", col, mass)
		if err != nil {
			return nil, err
		}
		dim, err := leDim(e, "users", col, bound)
		if err != nil {
			return nil, err
		}
		q.Dims = append(q.Dims, dim)
	}
	return q, nil
}

// quantile returns the q-quantile of a numeric column.
func quantile(e exec.Evaluator, table, col string, q float64) (float64, error) {
	t, err := e.Catalog().Table(table)
	if err != nil {
		return 0, err
	}
	ord := t.Schema().Ordinal(col)
	if ord < 0 {
		return 0, fmt.Errorf("workload: table %s has no column %q", table, col)
	}
	vec, err := t.NumericColumn(ord)
	if err != nil {
		return 0, err
	}
	sorted := append([]float64(nil), vec...)
	sort.Float64s(sorted)
	if len(sorted) == 0 {
		return 0, fmt.Errorf("workload: table %s is empty", table)
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i], nil
}

func buildTPCH(e exec.Evaluator, spec Spec) (*relq.Query, error) {
	q := &relq.Query{
		Tables: []string{"supplier", "part", "partsupp"},
		Fixed: []relq.FixedPred{
			{Kind: relq.FixedEquiJoin,
				Left:  relq.ColumnRef{Table: "part", Column: "p_partkey"},
				Right: relq.ColumnRef{Table: "partsupp", Column: "ps_partkey"}},
		},
	}
	qtyRef := relq.ColumnRef{Table: "partsupp", Column: "ps_availqty"}
	switch spec.Agg {
	case relq.AggCount:
		q.Constraint = relq.Constraint{Func: relq.AggCount, Op: relq.CmpEQ, Target: 1}
	case relq.AggSum:
		q.Constraint = relq.Constraint{Func: relq.AggSum, Attr: qtyRef, Op: relq.CmpGE, Target: 1}
	case relq.AggMax:
		q.Constraint = relq.Constraint{Func: relq.AggMax, Attr: qtyRef, Op: relq.CmpGE, Target: 1}
	case relq.AggAvg:
		q.Constraint = relq.Constraint{Func: relq.AggAvg, Attr: qtyRef, Op: relq.CmpEQ, Target: 1}
	default:
		return nil, fmt.Errorf("workload: TPCH skeleton does not support %s", spec.Agg)
	}

	nsel := spec.Dims
	// A MAX constraint is only meaningful when the original query caps
	// the aggregate attribute: expanding that cap is what raises the
	// attainable maximum. The first dimension of a MAX workload is
	// therefore ps_availqty bounded at its 5th percentile, leaving the
	// ratio axis room to demand up to ~20x growth.
	if spec.Agg == relq.AggMax {
		bound, err := quantile(e, "partsupp", "ps_availqty", 0.05)
		if err != nil {
			return nil, err
		}
		dim, err := leDim(e, "partsupp", "ps_availqty", bound)
		if err != nil {
			return nil, err
		}
		q.Dims = append(q.Dims, dim)
		nsel--
	}
	if spec.RefinableJoin {
		nsel--
		// The supplier-partsupp equi-join becomes a refinable band
		// (§2.4: join refinement expressed identically to selects).
		q.Dims = append(q.Dims, relq.Dimension{
			Kind:  relq.JoinBand,
			Left:  relq.ColumnRef{Table: "supplier", Column: "s_suppkey"},
			Right: relq.ColumnRef{Table: "partsupp", Column: "ps_suppkey"},
			Width: 100,
		})
	} else {
		q.Fixed = append(q.Fixed, relq.FixedPred{
			Kind:  relq.FixedEquiJoin,
			Left:  relq.ColumnRef{Table: "supplier", Column: "s_suppkey"},
			Right: relq.ColumnRef{Table: "partsupp", Column: "ps_suppkey"},
		})
	}
	if nsel > len(tpchPool) {
		return nil, fmt.Errorf("workload: TPCH skeleton has at most %d select dims", len(tpchPool))
	}
	for i := 0; i < nsel; i++ {
		p := tpchPool[(i+spec.AttrOffset)%len(tpchPool)]
		dim, err := leDim(e, p.table, p.col, p.bound)
		if err != nil {
			return nil, err
		}
		q.Dims = append(q.Dims, dim)
	}
	return q, nil
}

// leDim builds a one-sided upper-bound dimension. The workload scores
// refinement relative to the full attribute domain (Width = max − min)
// rather than the predicate interval: §2.3 explicitly permits custom
// monotonic predicate scoring, and domain-relative scores are
// comparable across attributes of very different selectivities, which
// keeps the refined-space layers of the ratio sweep shallow and
// uniform — the regime the paper's figures operate in.
func leDim(e exec.Evaluator, table, col string, bound float64) (relq.Dimension, error) {
	t, err := e.Catalog().Table(table)
	if err != nil {
		return relq.Dimension{}, err
	}
	ord := t.Schema().Ordinal(col)
	if ord < 0 {
		return relq.Dimension{}, fmt.Errorf("workload: table %s has no column %q", table, col)
	}
	stats, err := t.Stats(ord)
	if err != nil {
		return relq.Dimension{}, err
	}
	width := stats.Max - stats.Min
	if width <= 0 {
		width = math.Max(bound, 1)
	}
	return relq.Dimension{
		Kind:  relq.SelectLE,
		Col:   relq.ColumnRef{Table: table, Column: col},
		Bound: bound,
		Width: width,
	}, nil
}

// Calibrate measures the original query's actual aggregate and sets the
// constraint target to A_actual/ratio, returning A_actual. A ratio of
// 0.3 therefore means the original query attains 30% of the target —
// the x-axis of Figures 8 and 11.
func Calibrate(e exec.Evaluator, q *relq.Query, ratio float64) (float64, error) {
	if ratio <= 0 || ratio > 1 {
		return 0, fmt.Errorf("workload: ratio must be in (0, 1], got %v", ratio)
	}
	spec, err := agg.SpecFor(q.Constraint)
	if err != nil {
		return 0, err
	}
	p, err := e.Aggregate(q, relq.PrefixRegion(make([]float64, q.NumDims())))
	if err != nil {
		return 0, err
	}
	actual := spec.Final(p)
	if math.IsNaN(actual) || actual <= 0 {
		return 0, fmt.Errorf("workload: original query has aggregate %v; cannot calibrate a ratio", actual)
	}
	q.Constraint.Target = actual / ratio
	return actual, nil
}

// BuildCalibrated is Build followed by Calibrate.
func BuildCalibrated(e exec.Evaluator, spec Spec) (*relq.Query, error) {
	q, err := Build(e, spec)
	if err != nil {
		return nil, err
	}
	if _, err := Calibrate(e, q, spec.Ratio); err != nil {
		return nil, err
	}
	return q, nil
}
