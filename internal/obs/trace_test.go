package obs

import (
	"context"
	"testing"
	"time"
)

// TestTraceSpanTree builds a deterministic two-layer tree on a fake
// clock and checks IDs, parent links, timing and attributes.
func TestTraceSpanTree(t *testing.T) {
	clk := NewFakeClock(time.Unix(100, 0))
	tr := NewTrace("search-1", clk)
	if tr.ID() != "search-1" {
		t.Fatalf("ID = %q", tr.ID())
	}

	root := tr.NewSpan(0, "search")
	if !root.Active() || root.ID() != 1 {
		t.Fatalf("root ref = %+v", root)
	}
	root.SetAttrs(Float("gamma", 20), String("norm", "l2"), Int("dims", 3), Bool("exhausted", false))

	clk.Advance(time.Millisecond)
	layer := root.StartChild("layer")
	clk.Advance(time.Millisecond)
	fold := layer.StartChild("fold")
	clk.Advance(2 * time.Millisecond)
	if d := fold.End(); d != 2*time.Millisecond {
		t.Errorf("fold duration = %v", d)
	}
	clk.Advance(time.Millisecond)
	layer.End()
	clk.Advance(time.Millisecond)
	root.End()

	spans := tr.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("got %d spans", len(spans))
	}
	if spans[0].Name != "search" || spans[0].Parent != 0 {
		t.Errorf("root span = %+v", spans[0])
	}
	if spans[1].Name != "layer" || spans[1].Parent != spans[0].ID {
		t.Errorf("layer span = %+v", spans[1])
	}
	if spans[2].Name != "fold" || spans[2].Parent != spans[1].ID {
		t.Errorf("fold span = %+v", spans[2])
	}
	if d := tr.Duration(); d != 6*time.Millisecond {
		t.Errorf("trace duration = %v", d)
	}
	// Children are contained in their parents.
	for i := 1; i < len(spans); i++ {
		p := spans[spans[i].Parent-1]
		if spans[i].Start.Before(p.Start) || spans[i].End.After(p.End) {
			t.Errorf("span %q not contained in parent %q", spans[i].Name, p.Name)
		}
	}

	if a, ok := spans[0].Attr("gamma"); !ok || a.F64() != 20 {
		t.Errorf("gamma attr = %+v, %v", a, ok)
	}
	if a, ok := spans[0].Attr("norm"); !ok || a.Str() != "l2" {
		t.Errorf("norm attr = %+v, %v", a, ok)
	}
	if a, ok := spans[0].Attr("dims"); !ok || a.I64() != 3 {
		t.Errorf("dims attr = %+v, %v", a, ok)
	}
	if a, ok := spans[0].Attr("exhausted"); !ok || a.B() {
		t.Errorf("exhausted attr = %+v, %v", a, ok)
	}
	if _, ok := spans[0].Attr("missing"); ok {
		t.Error("found absent attr")
	}
}

// TestTraceEndIdempotent: ending twice keeps the first end time.
func TestTraceEndIdempotent(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	tr := NewTrace("", clk)
	sp := tr.NewSpan(0, "search")
	clk.Advance(time.Second)
	sp.End()
	clk.Advance(time.Hour)
	sp.End()
	if d := tr.Duration(); d != time.Second {
		t.Errorf("duration after double End = %v", d)
	}
}

// TestTraceAutoID: empty ids are auto-generated and unique.
func TestTraceAutoID(t *testing.T) {
	a, b := NewTrace("", nil), NewTrace("", nil)
	if a.ID() == "" || a.ID() == b.ID() {
		t.Errorf("auto ids %q, %q", a.ID(), b.ID())
	}
}

// TestTraceMaxSpans: spans past the cap are dropped and counted, and
// refs for dropped spans are inert.
func TestTraceMaxSpans(t *testing.T) {
	tr := NewTrace("capped", NewFakeClock(time.Unix(0, 0)))
	tr.SetMaxSpans(2)
	root := tr.NewSpan(0, "search")
	root.StartChild("kept")
	dropped := root.StartChild("dropped")
	if dropped.Active() {
		t.Error("over-cap span ref is active")
	}
	dropped.SetAttrs(Int("x", 1)) // must not panic or record
	dropped.End()
	if n := tr.NumSpans(); n != 2 {
		t.Errorf("NumSpans = %d", n)
	}
	if d := tr.Dropped(); d != 1 {
		t.Errorf("Dropped = %d", d)
	}
}

// TestSpanContextRoundTrip: spans survive a context hop; inactive refs
// leave the context untouched.
func TestSpanContextRoundTrip(t *testing.T) {
	tr := NewTrace("ctx", NewFakeClock(time.Unix(0, 0)))
	sp := tr.NewSpan(0, "search")
	ctx := ContextWithSpan(context.Background(), sp)
	got := SpanFromContext(ctx)
	if got != sp {
		t.Errorf("round trip = %+v, want %+v", got, sp)
	}
	base := context.Background()
	if ContextWithSpan(base, SpanRef{}) != base {
		t.Error("inactive ref changed the context")
	}
	if SpanFromContext(base).Active() {
		t.Error("empty context produced an active span")
	}
	if SpanFromContext(nil).Active() {
		t.Error("nil context produced an active span")
	}
}

// TestInertSpanZeroAlloc asserts the tracing-disabled path allocates
// nothing: the zero SpanRef's whole surface — child creation, attrs,
// end, context threading — must be free, since every search runs
// through it when no recorder is attached.
func TestInertSpanZeroAlloc(t *testing.T) {
	ctx := context.Background()
	var sink SpanRef
	allocs := testing.AllocsPerRun(1000, func() {
		sp := SpanFromContext(ctx)
		child := sp.StartChild("layer")
		child.End()
		ctx2 := ContextWithSpan(ctx, child)
		sink = SpanFromContext(ctx2)
		sink.EndAt(time.Time{})
		_ = sink.Active()
	})
	if allocs != 0 {
		t.Errorf("disabled-path allocs/op = %v, want 0", allocs)
	}
	var nilTrace *Trace
	allocs = testing.AllocsPerRun(1000, func() {
		sp := nilTrace.NewSpan(0, "search")
		sp.End()
	})
	if allocs != 0 {
		t.Errorf("nil-trace allocs/op = %v, want 0", allocs)
	}
}

// TestTraceBytesGrows: the byte estimate reflects spans and attrs, so
// the recorder cap has something real to account.
func TestTraceBytesGrows(t *testing.T) {
	tr := NewTrace("b", NewFakeClock(time.Unix(0, 0)))
	b0 := tr.Bytes()
	sp := tr.NewSpan(0, "search")
	b1 := tr.Bytes()
	sp.SetAttrs(String("fingerprint", "0123456789abcdef0123456789abcdef"))
	b2 := tr.Bytes()
	if !(b0 < b1 && b1 < b2) {
		t.Errorf("Bytes not monotonic: %d, %d, %d", b0, b1, b2)
	}
}
