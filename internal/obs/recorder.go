package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// RecorderConfig bounds and filters a FlightRecorder.
type RecorderConfig struct {
	// MaxBytes caps the recorder's total estimated trace bytes
	// (Trace.Bytes); adding a trace evicts the oldest kept traces
	// until it fits. <= 0 uses DefaultRecorderBytes. A single trace
	// larger than the cap is rejected outright — the cap is never
	// exceeded.
	MaxBytes int64
	// SlowThreshold is the tail-based keep: traces whose root span
	// lasted at least this long are always retained, regardless of
	// sampling. 0 means no fast path is privileged (only sampling
	// applies).
	SlowThreshold time.Duration
	// SampleN keeps 1-in-N of the traces below SlowThreshold
	// (deterministic counter, not random). <= 1 keeps every trace.
	SampleN int
}

// DefaultRecorderBytes is the recorder byte cap when the config
// leaves it zero: enough for a few hundred typical search traces.
const DefaultRecorderBytes = 8 << 20

// RecorderStats counts a recorder's traffic for the /debug/traces
// index and tests.
type RecorderStats struct {
	Added   int64 // traces offered via Add
	Kept    int64 // traces accepted (currently held or later evicted)
	Sampled int64 // fast traces dropped by 1-in-N sampling
	Evicted int64 // kept traces later evicted by the byte cap
	Bytes   int64 // current estimated resident bytes
	Traces  int   // current trace count
}

// FlightRecorder holds recently completed search traces in a bounded
// ring: a byte cap with oldest-first eviction, plus tail-based keep —
// slow searches (>= SlowThreshold) are always retained while fast
// ones are 1-in-N sampled — so the interesting tail survives even
// under a flood of cheap searches. All methods are nil-safe and
// safe for concurrent use.
type FlightRecorder struct {
	mu    sync.Mutex
	cfg   RecorderConfig
	ring  []*recEntry // FIFO: ring[0] is the oldest kept trace
	bytes int64
	seq   int64 // fast-trace counter for 1-in-N sampling
	stats RecorderStats
}

type recEntry struct {
	trace *Trace
	bytes int64
}

// NewFlightRecorder creates a recorder with the config (zero values
// get defaults: DefaultRecorderBytes, keep-all sampling).
func NewFlightRecorder(cfg RecorderConfig) *FlightRecorder {
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = DefaultRecorderBytes
	}
	if cfg.SampleN < 1 {
		cfg.SampleN = 1
	}
	return &FlightRecorder{cfg: cfg}
}

// Config returns the recorder's effective configuration.
func (r *FlightRecorder) Config() RecorderConfig {
	if r == nil {
		return RecorderConfig{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cfg
}

// Add offers a completed trace. Traces slower than SlowThreshold are
// always kept; faster ones pass a deterministic 1-in-N sample. The
// byte cap then evicts oldest-first until the newcomer fits (or
// rejects it when it alone exceeds the cap). Nil recorder and nil
// trace are no-ops.
func (r *FlightRecorder) Add(t *Trace) {
	if r == nil || t == nil {
		return
	}
	b := t.Bytes()
	d := t.Duration()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stats.Added++
	slow := r.cfg.SlowThreshold > 0 && d >= r.cfg.SlowThreshold
	if !slow && r.cfg.SampleN > 1 {
		r.seq++
		if r.seq%int64(r.cfg.SampleN) != 0 {
			r.stats.Sampled++
			return
		}
	}
	if b > r.cfg.MaxBytes {
		// One over-cap trace can never be held without busting the cap.
		r.stats.Sampled++
		return
	}
	r.stats.Kept++
	for r.bytes+b > r.cfg.MaxBytes && len(r.ring) > 0 {
		r.bytes -= r.ring[0].bytes
		r.ring[0] = nil
		r.ring = r.ring[1:]
		r.stats.Evicted++
	}
	r.ring = append(r.ring, &recEntry{trace: t, bytes: b})
	r.bytes += b
}

// Get returns the most recently added trace with the id (nil when
// absent or already evicted).
func (r *FlightRecorder) Get(id string) *Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := len(r.ring) - 1; i >= 0; i-- {
		if r.ring[i].trace.ID() == id {
			return r.ring[i].trace
		}
	}
	return nil
}

// Traces returns the kept traces, newest first.
func (r *FlightRecorder) Traces() []*Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Trace, 0, len(r.ring))
	for i := len(r.ring) - 1; i >= 0; i-- {
		out = append(out, r.ring[i].trace)
	}
	return out
}

// Len returns the kept trace count.
func (r *FlightRecorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ring)
}

// Bytes returns the current estimated resident bytes.
func (r *FlightRecorder) Bytes() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.bytes
}

// WriteDir writes every kept trace to dir (created if missing) as
// "<id>.trace.json" in Chrome trace-event format and returns how many
// files were written. Both CLIs call this under -trace-dir so every
// experiment run archives its traces for Perfetto.
func (r *FlightRecorder) WriteDir(dir string) (int, error) {
	if r == nil {
		return 0, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	n := 0
	for _, t := range r.Traces() {
		f, err := os.Create(filepath.Join(dir, t.ID()+".trace.json"))
		if err != nil {
			return n, err
		}
		err = t.WriteChromeJSON(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return n, fmt.Errorf("obs: writing trace %s: %w", t.ID(), err)
		}
		n++
	}
	return n, nil
}

// Stats returns the recorder's traffic counters.
func (r *FlightRecorder) Stats() RecorderStats {
	if r == nil {
		return RecorderStats{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.stats
	s.Bytes = r.bytes
	s.Traces = len(r.ring)
	return s
}
