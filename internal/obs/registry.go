// Package obs is the observability layer of the reproduction: a
// dependency-free (stdlib-only) metric registry, span-based phase
// timing, and a structured event stream, shared by the refinement
// search, the evaluation engine, the baselines and the experiment
// harness.
//
// Everything in the package is nil-tolerant: methods on a nil
// *Registry, *Counter, *Gauge, *Histogram, *Observer or zero Span are
// no-ops, so uninstrumented runs pay ~zero cost — a single nil check
// and no allocations on the hot path (asserted by tests with
// testing.AllocsPerRun).
package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is a concurrent metric registry holding counters, gauges
// and fixed-bucket histograms. Metric names follow Prometheus
// conventions and may carry constant labels inline:
//
//	acquire_engine_queries_total
//	acquire_phase_duration_seconds{phase="expand"}
//
// The part before the '{' is the metric family; exposition emits one
// HELP/TYPE header per family followed by every series of the family.
type Registry struct {
	mu      sync.Mutex
	order   []string // series registration order
	metrics map[string]metric
	help    map[string]string // family -> help text
	kinds   map[string]string // family -> counter|gauge|histogram
}

type metric interface {
	// expo writes the series' exposition lines. family/labels come
	// pre-split from the registered name.
	expo(w io.Writer, family, labels string)
	// value returns the flat snapshot entries for the series.
	value(name string, out map[string]float64)
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		metrics: make(map[string]metric),
		help:    make(map[string]string),
		kinds:   make(map[string]string),
	}
}

// splitName splits a series name into its family and inline labels
// ("a{b="c"}" -> "a", `b="c"`).
func splitName(name string) (family, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

// register returns the existing series under name or installs make().
// Kind mismatches are programmer error and panic.
func (r *Registry) register(name, help, kind string, mk func() metric) metric {
	family, _ := splitName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if k, ok := r.kinds[family]; ok && k != kind {
		panic(fmt.Sprintf("obs: metric family %s registered as %s, requested as %s", family, k, kind))
	}
	if m, ok := r.metrics[name]; ok {
		return m
	}
	m := mk()
	r.metrics[name] = m
	r.order = append(r.order, name)
	r.kinds[family] = kind
	if help != "" {
		r.help[family] = help
	}
	return m
}

// Counter returns (registering if needed) the named counter.
// Nil-safe: a nil registry returns a nil counter, whose methods no-op.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.register(name, help, "counter", func() metric { return &Counter{} }).(*Counter)
}

// Gauge returns (registering if needed) the named gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(name, help, "gauge", func() metric { return &Gauge{} }).(*Gauge)
}

// Histogram returns (registering if needed) the named histogram with
// the given bucket upper bounds (ascending; +Inf is implicit). An
// existing histogram keeps its original buckets. Nil or empty buckets
// default to DurationBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	return r.register(name, help, "histogram", func() metric { return newHistogram(buckets) }).(*Histogram)
}

// Snapshot returns a flat name -> value view of every metric:
// counters and gauges under their series name, histograms as
// name_sum and name_count entries.
func (r *Registry) Snapshot() map[string]float64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	ms := make([]metric, len(names))
	for i, n := range names {
		ms[i] = r.metrics[n]
	}
	r.mu.Unlock()
	out := make(map[string]float64, len(names))
	for i, n := range names {
		ms[i].value(n, out)
	}
	return out
}

// VisitHistograms calls fn for every registered histogram in
// first-registration order (series name includes inline labels).
// Harness summaries use it to render per-phase latency quantiles.
func (r *Registry) VisitHistograms(fn func(name string, h *Histogram)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	ms := make([]metric, len(names))
	for i, n := range names {
		ms[i] = r.metrics[n]
	}
	r.mu.Unlock()
	for i, n := range names {
		if h, ok := ms[i].(*Histogram); ok {
			fn(n, h)
		}
	}
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4), one HELP/TYPE header per family
// in first-registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, "# (no metric registry attached)\n")
		return err
	}
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	ms := make([]metric, len(names))
	for i, n := range names {
		ms[i] = r.metrics[n]
	}
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	kinds := make(map[string]string, len(r.kinds))
	for k, v := range r.kinds {
		kinds[k] = v
	}
	r.mu.Unlock()

	// Group series by family, keeping family first-seen order and
	// sorting series within a family for stable output.
	famOrder := []string{}
	byFam := map[string][]int{}
	for i, n := range names {
		fam, _ := splitName(n)
		if _, ok := byFam[fam]; !ok {
			famOrder = append(famOrder, fam)
		}
		byFam[fam] = append(byFam[fam], i)
	}
	var b strings.Builder
	for _, fam := range famOrder {
		if h := help[fam]; h != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", fam, h)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", fam, kinds[fam])
		idx := byFam[fam]
		sort.Slice(idx, func(a, c int) bool { return names[idx[a]] < names[idx[c]] })
		for _, i := range idx {
			_, labels := splitName(names[i])
			ms[i].expo(&b, fam, labels)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// published guards expvar against duplicate-name panics: expvar's
// namespace is process-global, ours is per-registry.
var published sync.Map

// Publish exposes the registry's Snapshot under the given expvar name
// (GET /debug/vars). Re-publishing the same name rebinds it to this
// registry; publishing from two registries concurrently last-wins.
func (r *Registry) Publish(name string) {
	if r == nil {
		return
	}
	holder, _ := published.LoadOrStore(name, &atomic.Pointer[Registry]{})
	ptr := holder.(*atomic.Pointer[Registry])
	if ptr.Swap(r) == nil {
		expvar.Publish(name, expvar.Func(func() any { return ptr.Load().Snapshot() }))
	}
}

// Counter is a monotonically increasing int64 metric.
type Counter struct{ v atomic.Int64 }

// Add increments the counter; no-op on nil.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) expo(w io.Writer, family, labels string) {
	writeSeries(w, family, labels, float64(c.v.Load()))
}

func (c *Counter) value(name string, out map[string]float64) { out[name] = float64(c.v.Load()) }

// Gauge is a float64 metric that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v; no-op on nil.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds delta atomically; no-op on nil.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

func (g *Gauge) expo(w io.Writer, family, labels string) {
	writeSeries(w, family, labels, g.Value())
}

func (g *Gauge) value(name string, out map[string]float64) { out[name] = g.Value() }

// DurationBuckets are the default histogram buckets, in seconds,
// spanning 100µs .. 10s — the observed range of evaluation-layer
// queries and search phases from bench scale to paper scale.
var DurationBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram with cumulative Prometheus
// exposition. Observations are lock-free.
type Histogram struct {
	bounds []float64      // ascending upper bounds; +Inf implicit
	counts []atomic.Int64 // len(bounds)+1, non-cumulative per bucket
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DurationBuckets
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one sample; no-op on nil.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds; no-op on nil.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

func (h *Histogram) expo(w io.Writer, family, labels string) {
	cum := int64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatFloat(h.bounds[i])
		}
		ls := `le="` + le + `"`
		if labels != "" {
			ls = labels + "," + ls
		}
		fmt.Fprintf(w, "%s_bucket{%s} %s\n", family, ls, strconv.FormatInt(cum, 10))
	}
	writeSeries(w, family+"_sum", labels, h.Sum())
	fmt.Fprintf(w, "%s_count%s %d\n", family+"", braced(labels), h.count.Load())
}

// Quantile estimates the q-quantile (q in [0,1]) by linear
// interpolation within the bucket holding the target rank — the
// standard Prometheus histogram_quantile estimate. The first bucket
// interpolates from 0, and ranks landing in the +Inf bucket clamp to
// the highest finite bound. Returns NaN when the histogram is empty
// (or nil).
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return math.NaN()
	}
	n := h.count.Load()
	if n == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(n)
	cum := float64(0)
	for i := range h.counts {
		c := float64(h.counts[i].Load())
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			if i >= len(h.bounds) {
				// +Inf bucket: no upper bound to interpolate toward.
				if len(h.bounds) == 0 {
					return math.NaN()
				}
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - cum) / c
			if frac < 0 {
				frac = 0
			}
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	if len(h.bounds) == 0 {
		return math.NaN()
	}
	return h.bounds[len(h.bounds)-1]
}

func (h *Histogram) value(name string, out map[string]float64) {
	fam, labels := splitName(name)
	suffix := braced(labels)
	out[fam+"_sum"+suffix] = h.Sum()
	out[fam+"_count"+suffix] = float64(h.count.Load())
	// Bucket-interpolated latency quantiles ride along under _p50/_p95/
	// _p99 keys — but only for non-empty histograms, so snapshot maps
	// stay json.Marshal-able (NaN is not a JSON number).
	if h.count.Load() > 0 {
		out[fam+"_p50"+suffix] = h.Quantile(0.50)
		out[fam+"_p95"+suffix] = h.Quantile(0.95)
		out[fam+"_p99"+suffix] = h.Quantile(0.99)
	}
}

func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

func writeSeries(w io.Writer, family, labels string, v float64) {
	fmt.Fprintf(w, "%s%s %s\n", family, braced(labels), formatFloat(v))
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
