package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"math"
	"regexp"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("acq_test_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("acq_test_total", ""); again != c {
		t.Fatal("re-registration did not return the same counter")
	}

	g := r.Gauge("acq_depth", "a gauge")
	g.Set(3.5)
	g.Add(-1)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", got)
	}

	h := r.Histogram("acq_lat_seconds", "a histogram", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("hist count = %d, want 4", h.Count())
	}
	if h.Sum() != 105 {
		t.Fatalf("hist sum = %v, want 105", h.Sum())
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("acq_x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Gauge("acq_x_total", "")
}

// promLine matches a Prometheus text-format sample line.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? (NaN|[+-]?Inf|[-+]?[0-9].*)$`)

func checkExposition(t *testing.T, text string) {
	t.Helper()
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("invalid exposition line: %q", line)
		}
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("acq_queries_total", "Total queries.").Add(7)
	r.Gauge("acq_layers", "Layers explored.").Set(3)
	h := r.Histogram(`acq_dur_seconds{phase="expand"}`, "Phase durations.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)
	h2 := r.Histogram(`acq_dur_seconds{phase="fold"}`, "", []float64{0.1, 1})
	h2.Observe(0.2)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	checkExposition(t, out)
	for _, want := range []string{
		"# HELP acq_queries_total Total queries.",
		"# TYPE acq_queries_total counter",
		"acq_queries_total 7",
		"# TYPE acq_layers gauge",
		"acq_layers 3",
		"# TYPE acq_dur_seconds histogram",
		`acq_dur_seconds_bucket{phase="expand",le="0.1"} 1`,
		`acq_dur_seconds_bucket{phase="expand",le="1"} 2`,
		`acq_dur_seconds_bucket{phase="expand",le="+Inf"} 3`,
		`acq_dur_seconds_sum{phase="expand"} 2.55`,
		`acq_dur_seconds_count{phase="expand"} 3`,
		`acq_dur_seconds_bucket{phase="fold",le="+Inf"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Exactly one TYPE header per family even with two series.
	if n := strings.Count(out, "# TYPE acq_dur_seconds histogram"); n != 1 {
		t.Errorf("histogram family has %d TYPE headers, want 1", n)
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("acq_a_total", "").Add(2)
	r.Gauge("acq_g", "").Set(1.5)
	r.Histogram(`acq_h_seconds{phase="x"}`, "", []float64{1}).Observe(0.25)
	snap := r.Snapshot()
	want := map[string]float64{
		"acq_a_total":                    2,
		"acq_g":                          1.5,
		`acq_h_seconds_sum{phase="x"}`:   0.25,
		`acq_h_seconds_count{phase="x"}`: 1,
	}
	for k, v := range want {
		if snap[k] != v {
			t.Errorf("snapshot[%q] = %v, want %v", k, snap[k], v)
		}
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("acq_cc_total", "")
	g := r.Gauge("acq_cg", "")
	h := r.Histogram("acq_ch_seconds", "", []float64{0.5})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if g.Value() != 8000 {
		t.Errorf("gauge = %v, want 8000", g.Value())
	}
	if h.Count() != 8000 {
		t.Errorf("hist count = %d, want 8000", h.Count())
	}
	if math.Abs(h.Sum()-800) > 1e-6 {
		t.Errorf("hist sum = %v, want 800", h.Sum())
	}
}

func TestNilRegistryFastPath(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	g := r.Gauge("x", "")
	h := r.Histogram("x", "", nil)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil metrics")
	}
	c.Add(1)
	c.Inc()
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil metrics must read zero")
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "no metric registry") {
		t.Errorf("nil exposition = %q", b.String())
	}
	if r.Snapshot() != nil {
		t.Error("nil snapshot must be nil")
	}
	r.Publish("acq_nil_test") // must not panic
}

// TestNilFastPathAllocs is the acceptance guard for the nil-registry
// fast path: every per-point hot-path operation on nil handles must
// cost zero allocations.
func TestNilFastPathAllocs(t *testing.T) {
	var (
		reg *Registry
		o   *Observer
		c   *Counter
		g   *Gauge
		h   *Histogram
	)
	allocs := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		g.Set(2)
		h.Observe(3)
		sp := o.StartPhase("fold")
		sp.End()
		o.Debug("event", "k", "v")
		_ = reg.Counter("x", "")
	})
	if allocs != 0 {
		t.Fatalf("nil fast path allocates %v per run, want 0", allocs)
	}
}

func TestPublishExpvar(t *testing.T) {
	r := NewRegistry()
	r.Counter("acq_pub_total", "").Add(3)
	name := fmt.Sprintf("acq_test_publish_%p", r)
	r.Publish(name)
	v := expvar.Get(name)
	if v == nil {
		t.Fatal("expvar not published")
	}
	var m map[string]float64
	if err := json.Unmarshal([]byte(v.String()), &m); err != nil {
		t.Fatalf("expvar value %q: %v", v.String(), err)
	}
	if m["acq_pub_total"] != 3 {
		t.Errorf("expvar snapshot = %v", m)
	}
	r.Publish(name) // idempotent, must not panic
}
