package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// mkTrace builds a closed single-span trace with the id and duration.
func mkTrace(id string, d time.Duration) *Trace {
	clk := NewFakeClock(time.Unix(0, 0))
	tr := NewTrace(id, clk)
	sp := tr.NewSpan(0, "search")
	clk.Advance(d)
	sp.End()
	return tr
}

// TestRecorderEvictionOrder: the byte cap evicts oldest-first, and Get
// resolves only traces still resident.
func TestRecorderEvictionOrder(t *testing.T) {
	one := mkTrace("t1", time.Millisecond)
	perTrace := one.Bytes()
	rec := NewFlightRecorder(RecorderConfig{MaxBytes: 3 * perTrace})
	rec.Add(one)
	rec.Add(mkTrace("t2", time.Millisecond))
	rec.Add(mkTrace("t3", time.Millisecond))
	if rec.Len() != 3 {
		t.Fatalf("Len = %d", rec.Len())
	}
	rec.Add(mkTrace("t4", time.Millisecond)) // evicts t1
	if rec.Len() != 3 {
		t.Fatalf("Len after overflow = %d", rec.Len())
	}
	if rec.Get("t1") != nil {
		t.Error("oldest trace survived eviction")
	}
	for _, id := range []string{"t2", "t3", "t4"} {
		if rec.Get(id) == nil {
			t.Errorf("trace %s missing", id)
		}
	}
	// Traces returns newest first.
	traces := rec.Traces()
	if len(traces) != 3 || traces[0].ID() != "t4" || traces[2].ID() != "t2" {
		ids := make([]string, len(traces))
		for i, tr := range traces {
			ids[i] = tr.ID()
		}
		t.Errorf("Traces order = %v", ids)
	}
	st := rec.Stats()
	if st.Added != 4 || st.Kept != 4 || st.Evicted != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestRecorderTailBasedKeep: slow traces always survive the sampler;
// fast ones pass 1-in-N deterministically.
func TestRecorderTailBasedKeep(t *testing.T) {
	rec := NewFlightRecorder(RecorderConfig{
		SlowThreshold: 100 * time.Millisecond,
		SampleN:       10,
	})
	for i := 0; i < 30; i++ {
		rec.Add(mkTrace(fmt.Sprintf("fast-%d", i), time.Millisecond))
	}
	for i := 0; i < 5; i++ {
		rec.Add(mkTrace(fmt.Sprintf("slow-%d", i), 200*time.Millisecond))
	}
	// 30 fast → 3 kept (1-in-10); 5 slow → all kept.
	var fast, slow int
	for _, tr := range rec.Traces() {
		if tr.Duration() >= 100*time.Millisecond {
			slow++
		} else {
			fast++
		}
	}
	if slow != 5 {
		t.Errorf("slow kept = %d, want 5 (tail-based keep)", slow)
	}
	if fast != 3 {
		t.Errorf("fast kept = %d, want 3 (1-in-10 of 30)", fast)
	}
	st := rec.Stats()
	if st.Sampled != 27 {
		t.Errorf("Sampled = %d, want 27", st.Sampled)
	}
}

// TestRecorderByteCapSoak floods the recorder with 1000 traces of
// varying sizes and asserts the cap is never exceeded at any point —
// the acceptance bound for the flight recorder.
func TestRecorderByteCapSoak(t *testing.T) {
	const cap = 64 << 10
	rec := NewFlightRecorder(RecorderConfig{MaxBytes: cap})
	for i := 0; i < 1000; i++ {
		clk := NewFakeClock(time.Unix(0, 0))
		tr := NewTrace(fmt.Sprintf("soak-%d", i), clk)
		root := tr.NewSpan(0, "search")
		for j := 0; j < i%40; j++ { // sizes vary 1..40 spans
			sp := root.StartChild("layer")
			sp.SetAttrs(Int("layer", int64(j)), Float("qscore", 0.5))
			sp.End()
		}
		clk.Advance(time.Millisecond)
		root.End()
		rec.Add(tr)
		if b := rec.Bytes(); b > cap {
			t.Fatalf("after %d adds: %d bytes > cap %d", i+1, b, cap)
		}
	}
	if rec.Len() == 0 {
		t.Error("soak evicted everything")
	}
	st := rec.Stats()
	if st.Added != 1000 {
		t.Errorf("Added = %d", st.Added)
	}
	if st.Bytes > cap {
		t.Errorf("resident %d > cap %d", st.Bytes, cap)
	}
}

// TestRecorderOverCapTrace: a single trace larger than the whole cap
// is rejected rather than busting the budget.
func TestRecorderOverCapTrace(t *testing.T) {
	small := mkTrace("small", time.Millisecond)
	rec := NewFlightRecorder(RecorderConfig{MaxBytes: small.Bytes() + 8})
	rec.Add(small)
	big := NewTrace("big", NewFakeClock(time.Unix(0, 0)))
	root := big.NewSpan(0, "search")
	for i := 0; i < 100; i++ {
		root.StartChild("evaluate").End()
	}
	root.End()
	rec.Add(big)
	if rec.Get("big") != nil {
		t.Error("over-cap trace was kept")
	}
	if rec.Get("small") == nil {
		t.Error("resident trace evicted for a rejected one")
	}
}

// TestRecorderNilSafe: every method on a nil recorder no-ops.
func TestRecorderNilSafe(t *testing.T) {
	var rec *FlightRecorder
	rec.Add(mkTrace("x", time.Millisecond))
	if rec.Len() != 0 || rec.Bytes() != 0 || rec.Get("x") != nil || rec.Traces() != nil {
		t.Error("nil recorder retained state")
	}
	if n, err := rec.WriteDir(t.TempDir()); n != 0 || err != nil {
		t.Errorf("nil WriteDir = %d, %v", n, err)
	}
	_ = rec.Stats()
	_ = rec.Config()
}

// TestRecorderWriteDir: every kept trace lands as a parseable
// <id>.trace.json Chrome file.
func TestRecorderWriteDir(t *testing.T) {
	rec := NewFlightRecorder(RecorderConfig{})
	rec.Add(mkTrace("a", time.Millisecond))
	rec.Add(mkTrace("b", time.Millisecond))
	dir := filepath.Join(t.TempDir(), "traces")
	n, err := rec.WriteDir(dir)
	if err != nil || n != 2 {
		t.Fatalf("WriteDir = %d, %v", n, err)
	}
	for _, id := range []string{"a", "b"} {
		raw, err := os.ReadFile(filepath.Join(dir, id+".trace.json"))
		if err != nil {
			t.Fatal(err)
		}
		var doc map[string]any
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Errorf("trace %s: invalid JSON: %v", id, err)
		}
	}
}
