package obs

import (
	"sync"
	"time"
)

// Clock abstracts wall-clock reads so deterministic tests inject a
// fake clock instead of sleeping. All span and layer timing in the
// repository routes through a Clock.
type Clock interface {
	Now() time.Time
}

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

// Real is the wall clock.
var Real Clock = realClock{}

// FakeClock is a manually advanced Clock for tests. An optional
// per-read step auto-advances time on every Now call, so code that
// measures an interval between two reads sees a deterministic,
// non-zero duration.
type FakeClock struct {
	mu   sync.Mutex
	t    time.Time
	step time.Duration
}

// NewFakeClock starts a fake clock at start.
func NewFakeClock(start time.Time) *FakeClock { return &FakeClock{t: start} }

// AutoAdvance makes every Now call advance the clock by step after
// returning, and returns the clock for chaining.
func (c *FakeClock) AutoAdvance(step time.Duration) *FakeClock {
	c.mu.Lock()
	c.step = step
	c.mu.Unlock()
	return c
}

// Now returns the current fake time, then applies the auto-advance
// step if one is set.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.t
	c.t = c.t.Add(c.step)
	return now
}

// Advance moves the clock forward by d.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// PhaseStat aggregates the spans observed under one phase name.
type PhaseStat struct {
	Count int64
	Total time.Duration
}

// PhaseTimes accumulates per-phase durations; one instance backs each
// search-scoped Observer, so a SearchReport can break a single
// refinement down by phase. Nil-safe.
type PhaseTimes struct {
	mu sync.Mutex
	m  map[string]PhaseStat
}

// NewPhaseTimes creates an empty collector.
func NewPhaseTimes() *PhaseTimes { return &PhaseTimes{m: make(map[string]PhaseStat)} }

func (p *PhaseTimes) add(name string, d time.Duration) {
	if p == nil {
		return
	}
	p.mu.Lock()
	s := p.m[name]
	s.Count++
	s.Total += d
	p.m[name] = s
	p.mu.Unlock()
}

// Snapshot returns a copy of the accumulated phase stats.
func (p *PhaseTimes) Snapshot() map[string]PhaseStat {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]PhaseStat, len(p.m))
	for k, v := range p.m {
		out[k] = v
	}
	return out
}

// Span is one timed phase execution, started by Observer.StartPhase
// and finished by End. The zero Span (from a nil Observer) is a
// no-op, and being a value type it never allocates.
type Span struct {
	o     *Observer
	name  string
	start time.Time
}

// End stops the span, folds its duration into the phase's duration
// histogram (acquire_phase_duration_seconds{phase="<name>"}) and the
// observer's per-search phase collector, and returns the duration.
func (s Span) End() time.Duration {
	if s.o == nil {
		return 0
	}
	d := s.o.clock.Now().Sub(s.start)
	if d < 0 {
		d = 0
	}
	s.o.phaseHist(s.name).ObserveDuration(d)
	s.o.phases.add(s.name, d)
	return d
}
