package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
	"time"
)

func TestFakeClock(t *testing.T) {
	t0 := time.Unix(1000, 0)
	c := NewFakeClock(t0)
	if !c.Now().Equal(t0) {
		t.Fatal("fake clock did not start at t0")
	}
	c.Advance(3 * time.Second)
	if got := c.Now().Sub(t0); got != 3*time.Second {
		t.Fatalf("advance: got %v", got)
	}
	c.AutoAdvance(time.Millisecond)
	a := c.Now()
	b := c.Now()
	if d := b.Sub(a); d != time.Millisecond {
		t.Fatalf("auto-advance step = %v, want 1ms", d)
	}
}

func TestSpanDeterministicWithFakeClock(t *testing.T) {
	reg := NewRegistry()
	clk := NewFakeClock(time.Unix(0, 0))
	o := NewObserver(reg).WithClock(clk).ForSearch("s1")

	sp := o.StartPhase("expand")
	clk.Advance(250 * time.Millisecond)
	if d := sp.End(); d != 250*time.Millisecond {
		t.Fatalf("span duration = %v, want 250ms", d)
	}
	sp2 := o.StartPhase("expand")
	clk.Advance(50 * time.Millisecond)
	sp2.End()

	ph := o.Phases()
	if ph["expand"].Count != 2 || ph["expand"].Total != 300*time.Millisecond {
		t.Fatalf("phase stats = %+v", ph["expand"])
	}

	h := reg.Histogram(`acquire_phase_duration_seconds{phase="expand"}`, "", nil)
	if h.Count() != 2 {
		t.Fatalf("histogram count = %d, want 2", h.Count())
	}
	if h.Sum() != 0.3 {
		t.Fatalf("histogram sum = %v, want 0.3", h.Sum())
	}
}

func TestForSearchIsolatesPhases(t *testing.T) {
	o := NewObserver(nil)
	a := o.ForSearch("a")
	b := o.ForSearch("b")
	clk := NewFakeClock(time.Unix(0, 0)).AutoAdvance(time.Millisecond)
	a = a.WithClock(clk)
	a.StartPhase("fold").End()
	if got := b.Phases(); len(got) != 0 {
		t.Fatalf("search b sees search a's phases: %v", got)
	}
	if got := a.Phases(); got["fold"].Count != 1 {
		t.Fatalf("search a phases = %v", got)
	}
	if o.Phases() != nil {
		t.Fatal("unscoped observer must have no phase collector")
	}
}

func TestObserverStructuredEvents(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	o := NewObserver(nil).WithLogger(logger).ForSearch("search-7")
	o.Info("search.start", "gamma", 10.0)
	o.Debug("search.point", "seq", 3, "outcome", "satisfied")

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d log lines, want 2:\n%s", len(lines), buf.String())
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec["msg"] != "search.start" || rec["search_id"] != "search-7" || rec["gamma"] != 10.0 {
		t.Errorf("start record = %v", rec)
	}
	if err := json.Unmarshal([]byte(lines[1]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec["outcome"] != "satisfied" || rec["search_id"] != "search-7" {
		t.Errorf("point record = %v", rec)
	}
}

func TestLogEnabledGatesLevels(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil)) // Info level
	o := NewObserver(nil).WithLogger(logger)
	if o.LogEnabled(slog.LevelDebug) {
		t.Error("debug must be disabled at info level")
	}
	if !o.LogEnabled(slog.LevelInfo) {
		t.Error("info must be enabled")
	}
	o.Debug("dropped")
	if buf.Len() != 0 {
		t.Errorf("debug event leaked: %s", buf.String())
	}
	var nilObs *Observer
	if nilObs.LogEnabled(slog.LevelError) {
		t.Error("nil observer must report logging disabled")
	}
}

func TestNilObserverAccessors(t *testing.T) {
	var o *Observer
	if o.Clock() != Real {
		t.Error("nil observer clock must be Real")
	}
	if o.Registry() != nil || o.SearchID() != "" || o.Phases() != nil {
		t.Error("nil observer accessors must be zero")
	}
	if o.WithClock(Real) != nil || o.WithLogger(nil) != nil || o.ForSearch("x") != nil {
		t.Error("deriving from a nil observer must stay nil")
	}
	if o.Counter("x", "") != nil || o.Gauge("x", "") != nil || o.Histogram("x", "", nil) != nil {
		t.Error("nil observer metrics must be nil")
	}
}
