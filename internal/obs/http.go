package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// NewMux builds the live-introspection HTTP handler both CLIs serve
// under -metrics-addr:
//
//	/metrics            Prometheus text exposition of the registry
//	/healthz            liveness probe ("ok")
//	/debug/vars         expvar JSON (includes the registry when Published)
//	/debug/pprof        the standard pprof profile suite
//	/debug/traces       flight-recorder index (text table, one trace per line)
//	/debug/traces/<id>  one trace as Chrome trace-event JSON (Perfetto-loadable)
//
// rec may be nil: the trace endpoints then report that no recorder is
// attached.
func NewMux(reg *Registry, rec *FlightRecorder) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if rec == nil {
			fmt.Fprintln(w, "no flight recorder attached (enable tracing)")
			return
		}
		st := rec.Stats()
		fmt.Fprintf(w, "flight recorder: %d traces, %d bytes (added=%d kept=%d sampled=%d evicted=%d)\n",
			st.Traces, st.Bytes, st.Added, st.Kept, st.Sampled, st.Evicted)
		fmt.Fprintf(w, "%-24s %12s %8s %8s  %s\n", "id", "duration", "spans", "bytes", "export")
		for _, t := range rec.Traces() {
			fmt.Fprintf(w, "%-24s %12s %8d %8d  /debug/traces/%s\n",
				t.ID(), t.Duration(), t.NumSpans(), t.Bytes(), t.ID())
		}
	})
	mux.HandleFunc("/debug/traces/{id}", func(w http.ResponseWriter, r *http.Request) {
		if rec == nil {
			http.Error(w, "no flight recorder attached", http.StatusNotFound)
			return
		}
		t := rec.Get(r.PathValue("id"))
		if t == nil {
			http.Error(w, "trace not found (evicted or never recorded)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = t.WriteChromeJSON(w)
	})
	return mux
}

// Serve starts the introspection server on addr (host:port; port 0
// picks a free port) in a background goroutine. It returns the bound
// address and a shutdown function. The server lives until shutdown is
// called or the process exits — profiling a long run needs no
// coordination with the search. rec may be nil (no trace endpoints).
func Serve(addr string, reg *Registry, rec *FlightRecorder) (boundAddr string, shutdown func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: metrics listener: %w", err)
	}
	srv := &http.Server{Handler: NewMux(reg, rec), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), func() { _ = srv.Close() }, nil
}
