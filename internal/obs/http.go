package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// NewMux builds the live-introspection HTTP handler both CLIs serve
// under -metrics-addr:
//
//	/metrics      Prometheus text exposition of the registry
//	/healthz      liveness probe ("ok")
//	/debug/vars   expvar JSON (includes the registry when Published)
//	/debug/pprof  the standard pprof profile suite
func NewMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the introspection server on addr (host:port; port 0
// picks a free port) in a background goroutine. It returns the bound
// address and a shutdown function. The server lives until shutdown is
// called or the process exits — profiling a long run needs no
// coordination with the search.
func Serve(addr string, reg *Registry) (boundAddr string, shutdown func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: metrics listener: %w", err)
	}
	srv := &http.Server{Handler: NewMux(reg), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), func() { _ = srv.Close() }, nil
}
