package obs

import (
	"bufio"
	"io"
	"math"
	"sort"
	"strconv"
	"time"
)

// WriteChromeJSON renders the trace in Chrome trace-event format —
// the `{"traceEvents": [...]}` JSON that chrome://tracing and
// Perfetto load directly. Every span becomes one complete ("X")
// event with microsecond ts/dur relative to the trace start; attrs,
// the span id and the parent id land in args.
//
// The viewer nests events on a (pid, tid) track purely by time
// containment, so concurrent sibling spans (worker-pool region
// evaluations, per-shard scatter spans) would corrupt the rendering
// if they shared a track. Spans are therefore assigned to "lanes"
// (tids) greedily: each span takes its parent's lane when that lane
// is free over the span's interval, otherwise the first free lane —
// so a single-threaded trace stays on one track and parallel stages
// fan out across exactly as many tracks as their true concurrency.
func (t *Trace) WriteChromeJSON(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"displayTimeUnit":"ms","traceEvents":[]}`)
		return err
	}
	spans := t.Snapshot()
	base := t.Start()
	lanes := assignLanes(spans)

	bw := bufio.NewWriter(w)
	bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`)
	bw.WriteString(`{"ph":"M","pid":1,"tid":0,"name":"process_name","args":{"name":`)
	writeJSONString(bw, "acquire "+t.id)
	bw.WriteString(`}}`)
	for i := range spans {
		s := &spans[i]
		bw.WriteByte(',')
		writeChromeEvent(bw, s, base, lanes[i])
	}
	bw.WriteString(`]}`)
	return bw.Flush()
}

func writeChromeEvent(bw *bufio.Writer, s *TraceSpan, base time.Time, lane int) {
	end := s.End
	if end.IsZero() {
		end = s.Start // still-open span renders as zero-width
	}
	bw.WriteString(`{"ph":"X","pid":1,"tid":`)
	bw.WriteString(strconv.Itoa(lane))
	bw.WriteString(`,"name":`)
	writeJSONString(bw, s.Name)
	bw.WriteString(`,"ts":`)
	writeMicros(bw, s.Start.Sub(base))
	bw.WriteString(`,"dur":`)
	writeMicros(bw, end.Sub(s.Start))
	bw.WriteString(`,"args":{"span_id":`)
	bw.WriteString(strconv.FormatUint(uint64(s.ID), 10))
	bw.WriteString(`,"parent_id":`)
	bw.WriteString(strconv.FormatUint(uint64(s.Parent), 10))
	for _, a := range s.Attrs {
		bw.WriteByte(',')
		writeJSONString(bw, a.Key)
		bw.WriteByte(':')
		switch a.Kind {
		case AttrString:
			writeJSONString(bw, a.str)
		case AttrInt:
			bw.WriteString(strconv.FormatInt(a.i, 10))
		case AttrFloat:
			if math.IsNaN(a.num) || math.IsInf(a.num, 0) {
				writeJSONString(bw, formatFloat(a.num)) // NaN/Inf are not JSON numbers
			} else {
				bw.WriteString(strconv.FormatFloat(a.num, 'g', -1, 64))
			}
		default:
			bw.WriteString(strconv.FormatBool(a.i != 0))
		}
	}
	bw.WriteString(`}}`)
}

// writeMicros renders a duration as fractional microseconds (the
// trace-event time unit), keeping sub-microsecond FakeClock steps
// visible.
func writeMicros(bw *bufio.Writer, d time.Duration) {
	if d < 0 {
		d = 0
	}
	micros := float64(d.Nanoseconds()) / 1e3
	bw.WriteString(strconv.FormatFloat(micros, 'f', -1, 64))
}

// writeJSONString writes s as a JSON string literal with minimal
// escaping (names and attr values here are ASCII identifiers and
// SQL fragments).
func writeJSONString(bw *bufio.Writer, s string) {
	bw.WriteByte('"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			bw.WriteByte('\\')
			bw.WriteByte(c)
		case c < 0x20:
			const hex = "0123456789abcdef"
			bw.WriteString(`\u00`)
			bw.WriteByte(hex[c>>4])
			bw.WriteByte(hex[c&0xf])
		default:
			bw.WriteByte(c)
		}
	}
	bw.WriteByte('"')
}

// assignLanes maps each span (by snapshot index) to a viewer track.
// Greedy interval scheduling: process spans by (start asc, longer
// first); a lane is free for a span if every span previously placed
// there either ended at/before the span's start or is an ancestor
// whose interval fully contains it (what the viewer renders as
// nesting). The ancestry check matters: two sibling shard spans with
// identical intervals would otherwise "contain" each other and be
// drawn nested instead of side by side. Parent's lane is preferred so
// sequential call chains stay on one track.
func assignLanes(spans []TraceSpan) map[int]int {
	type interval struct {
		idx        int
		start, end time.Time
	}
	ivs := make([]interval, len(spans))
	for i := range spans {
		end := spans[i].End
		if end.IsZero() {
			end = spans[i].Start
		}
		ivs[i] = interval{idx: i, start: spans[i].Start, end: end}
	}
	sort.SliceStable(ivs, func(a, b int) bool {
		if !ivs[a].start.Equal(ivs[b].start) {
			return ivs[a].start.Before(ivs[b].start)
		}
		return ivs[a].end.After(ivs[b].end)
	})

	// isAncestor walks idx's parent chain looking for id. SpanIDs are
	// dense (index+1), so the chain resolves without a lookup table.
	isAncestor := func(id SpanID, idx int) bool {
		for p := spans[idx].Parent; p != 0; {
			if p == id {
				return true
			}
			if int(p) < 1 || int(p) > len(spans) {
				return false
			}
			p = spans[p-1].Parent
		}
		return false
	}

	// Per lane, a stack of open containment intervals: push on place,
	// pop ends that are <= the next span's start.
	type open struct {
		end time.Time
		id  SpanID
	}
	var laneStacks [][]open
	laneOf := make(map[int]int, len(spans))
	spanLane := make(map[SpanID]int, len(spans))

	fits := func(lane int, iv interval) bool {
		stack := laneStacks[lane]
		// Drop expired intervals.
		for len(stack) > 0 && !stack[len(stack)-1].end.After(iv.start) {
			stack = stack[:len(stack)-1]
		}
		laneStacks[lane] = stack
		if len(stack) == 0 {
			return true
		}
		// Occupied: only nest inside an ancestor that truly contains us.
		top := stack[len(stack)-1]
		return !top.end.Before(iv.end) && isAncestor(top.id, iv.idx)
	}
	place := func(lane int, iv interval) {
		laneStacks[lane] = append(laneStacks[lane], open{end: iv.end, id: spans[iv.idx].ID})
		laneOf[iv.idx] = lane
		spanLane[spans[iv.idx].ID] = lane
	}

	for _, iv := range ivs {
		if parent := spans[iv.idx].Parent; parent != 0 {
			if lane, ok := spanLane[parent]; ok && fits(lane, iv) {
				place(lane, iv)
				continue
			}
		}
		placed := false
		for lane := range laneStacks {
			if fits(lane, iv) {
				place(lane, iv)
				placed = true
				break
			}
		}
		if !placed {
			laneStacks = append(laneStacks, nil)
			place(len(laneStacks)-1, iv)
		}
	}
	return laneOf
}
