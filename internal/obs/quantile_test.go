package obs

import (
	"math"
	"testing"
)

// TestHistogramQuantile checks the bucket-interpolated estimate on a
// hand-computed distribution: bounds {1,2,4}, ten observations split
// 5 in (0,1], 3 in (1,2], 2 in (2,4].
func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for i := 0; i < 5; i++ {
		h.Observe(0.5)
	}
	for i := 0; i < 3; i++ {
		h.Observe(1.5)
	}
	for i := 0; i < 2; i++ {
		h.Observe(3)
	}
	cases := []struct {
		q, want float64
	}{
		{0.5, 1.0},   // rank 5 = top of first bucket: 0 + 1*(5/5)
		{0.25, 0.5},  // rank 2.5 mid first bucket: 0 + 1*(2.5/5)
		{0.8, 2.0},   // rank 8 = top of second bucket: 1 + 1*(3/3)
		{0.9, 3.0},   // rank 9 mid third bucket: 2 + 2*(1/2)
		{1.0, 4.0},   // rank 10 = top of third bucket
		{0.0, 0.0},   // rank 0 interpolates from bucket floor
		{-0.5, 0.0},  // clamped
		{1.5, 4.0},   // clamped
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

// TestHistogramQuantileInfBucket: ranks landing in the +Inf bucket
// clamp to the highest finite bound instead of inventing a value.
func TestHistogramQuantileInfBucket(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	h.Observe(100) // +Inf bucket
	h.Observe(100)
	if got := h.Quantile(0.99); got != 2 {
		t.Errorf("Quantile in +Inf bucket = %v, want 2 (highest bound)", got)
	}
}

// TestHistogramQuantileEmpty: empty and nil histograms return NaN.
func TestHistogramQuantileEmpty(t *testing.T) {
	h := newHistogram([]float64{1})
	if got := h.Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("empty Quantile = %v, want NaN", got)
	}
	var nilH *Histogram
	if got := nilH.Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("nil Quantile = %v, want NaN", got)
	}
}

// TestSnapshotQuantileKeys: non-empty histograms expose _p50/_p95/_p99
// in Registry.Snapshot; empty ones omit the keys entirely (NaN would
// break json.Marshal on harness result files).
func TestSnapshotQuantileKeys(t *testing.T) {
	reg := NewRegistry()
	full := reg.Histogram(`acquire_phase_duration_seconds{phase="search"}`, "", []float64{0.001, 0.01, 0.1})
	reg.Histogram(`acquire_phase_duration_seconds{phase="idle"}`, "", []float64{0.001, 0.01, 0.1})
	for i := 0; i < 4; i++ {
		full.Observe(0.005)
	}
	snap := reg.Snapshot()
	for _, key := range []string{
		`acquire_phase_duration_seconds_p50{phase="search"}`,
		`acquire_phase_duration_seconds_p95{phase="search"}`,
		`acquire_phase_duration_seconds_p99{phase="search"}`,
	} {
		v, ok := snap[key]
		if !ok {
			t.Errorf("snapshot missing %s", key)
			continue
		}
		if math.IsNaN(v) || v <= 0 {
			t.Errorf("%s = %v", key, v)
		}
	}
	if _, ok := snap[`acquire_phase_duration_seconds_p50{phase="idle"}`]; ok {
		t.Error("empty histogram leaked a NaN quantile key into the snapshot")
	}
}

// TestVisitHistograms: the registry walk yields every histogram series
// by full name without holding the registry lock against re-entry.
func TestVisitHistograms(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram(`h1`, "", []float64{1})
	reg.Histogram(`h2{shard="0"}`, "", []float64{1})
	reg.Counter("c1", "") // must not be visited
	seen := map[string]bool{}
	reg.VisitHistograms(func(name string, h *Histogram) {
		if h == nil {
			t.Errorf("nil histogram for %s", name)
		}
		seen[name] = true
		reg.Counter("reentrant", "").Inc() // deadlock check
	})
	if !seen["h1"] || !seen[`h2{shard="0"}`] || len(seen) != 2 {
		t.Errorf("visited %v", seen)
	}
}
