package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"
)

// chromeDoc mirrors the Chrome trace-event JSON object format the
// exporter emits, for round-trip assertions.
type chromeDoc struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

func exportTrace(t *testing.T, tr *Trace) chromeDoc {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteChromeJSON(&buf); err != nil {
		t.Fatalf("WriteChromeJSON: %v", err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exporter produced invalid JSON: %v\n%s", err, buf.String())
	}
	return doc
}

// TestChromeJSONRoundTrip: a simple nested trace exports as parseable
// Chrome JSON with microsecond timestamps relative to the trace start
// and args carrying the span attributes.
func TestChromeJSONRoundTrip(t *testing.T) {
	clk := NewFakeClock(time.Unix(50, 0))
	tr := NewTrace("search-7", clk)
	root := tr.NewSpan(0, "search")
	root.SetAttrs(Float("gamma", 20), String("norm", "l2"))
	clk.Advance(time.Millisecond)
	layer := root.StartChild("layer")
	clk.Advance(3 * time.Millisecond)
	layer.End()
	clk.Advance(time.Millisecond)
	root.End()

	doc := exportTrace(t, tr)
	byName := map[string]chromeEvent{}
	for _, ev := range doc.TraceEvents {
		byName[ev.Name] = ev
	}
	if _, ok := byName["process_name"]; !ok {
		t.Error("missing process_name metadata event")
	}
	rootEv, ok := byName["search"]
	if !ok {
		t.Fatal("missing search event")
	}
	if rootEv.Ph != "X" {
		t.Errorf("ph = %q", rootEv.Ph)
	}
	if rootEv.Ts != 0 || rootEv.Dur != 5000 {
		t.Errorf("root ts/dur = %v/%v, want 0/5000 µs", rootEv.Ts, rootEv.Dur)
	}
	layerEv := byName["layer"]
	if layerEv.Ts != 1000 || layerEv.Dur != 3000 {
		t.Errorf("layer ts/dur = %v/%v, want 1000/3000 µs", layerEv.Ts, layerEv.Dur)
	}
	if g, ok := rootEv.Args["gamma"].(float64); !ok || g != 20 {
		t.Errorf("gamma arg = %v", rootEv.Args["gamma"])
	}
	if n, ok := rootEv.Args["norm"].(string); !ok || n != "l2" {
		t.Errorf("norm arg = %v", rootEv.Args["norm"])
	}
	// A nested child shares its parent's lane so the viewer stacks them.
	if layerEv.Tid != rootEv.Tid {
		t.Errorf("nested child on lane %d, parent on %d", layerEv.Tid, rootEv.Tid)
	}
}

// TestChromeJSONConcurrentSiblings: overlapping siblings must land on
// distinct lanes or the viewer would draw them as nested.
func TestChromeJSONConcurrentSiblings(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	tr := NewTrace("scatter", clk)
	root := tr.NewSpan(0, "search")
	base := clk.Now()
	// Four shard spans covering the same interval.
	sc := root.StartChild("scatter")
	for i := 0; i < 4; i++ {
		sc.AddChild("scatter.shard", base, base.Add(10*time.Millisecond))
	}
	clk.Advance(10 * time.Millisecond)
	sc.End()
	root.End()

	doc := exportTrace(t, tr)
	lanes := map[int]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Name == "scatter.shard" {
			if lanes[ev.Tid] {
				t.Errorf("two overlapping shard spans share lane %d", ev.Tid)
			}
			lanes[ev.Tid] = true
		}
	}
	if len(lanes) != 4 {
		t.Errorf("shard spans on %d lanes, want 4", len(lanes))
	}
}

// TestChromeJSONNonFiniteAttrs: NaN/Inf float attrs must not corrupt
// the JSON document (they are not representable as JSON numbers).
func TestChromeJSONNonFiniteAttrs(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	tr := NewTrace("nan", clk)
	sp := tr.NewSpan(0, "search")
	sp.SetAttrs(Float("skew_ratio", math.NaN()), Float("inf", math.Inf(1)), String("quote", `a"b\c`))
	sp.End()
	doc := exportTrace(t, tr) // Unmarshal inside fails on invalid JSON
	for _, ev := range doc.TraceEvents {
		if ev.Name == "search" {
			if q, _ := ev.Args["quote"].(string); q != `a"b\c` {
				t.Errorf("escaped string round-trip = %q", q)
			}
		}
	}
}

// TestChromeJSONOpenSpan: a never-ended span (cancelled search) still
// exports — zero duration, valid document.
func TestChromeJSONOpenSpan(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	tr := NewTrace("open", clk)
	root := tr.NewSpan(0, "search")
	root.StartChild("layer") // never ended
	clk.Advance(time.Millisecond)
	root.End()
	doc := exportTrace(t, tr)
	var found bool
	for _, ev := range doc.TraceEvents {
		if ev.Name == "layer" {
			found = true
			if ev.Dur != 0 {
				t.Errorf("open span dur = %v", ev.Dur)
			}
		}
	}
	if !found {
		t.Error("open span missing from export")
	}
}

// TestChromeJSONSpanIDs: every event carries span_id/parent_id args so
// the tree is reconstructible from the file alone.
func TestChromeJSONSpanIDs(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	tr := NewTrace("ids", clk)
	root := tr.NewSpan(0, "search")
	child := root.StartChild("layer")
	child.End()
	root.End()
	var buf bytes.Buffer
	if err := tr.WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"span_id"`, `"parent_id"`} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("export missing %s:\n%s", want, buf.String())
		}
	}
}
