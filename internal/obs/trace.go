package obs

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// SpanID identifies one span within its Trace. IDs are dense — the
// first span of a trace gets 1 — and 0 means "no span" (the zero
// SpanRef, the root's parent).
type SpanID uint32

// AttrKind discriminates the typed payload of an Attr.
type AttrKind uint8

const (
	// AttrString holds a string value.
	AttrString AttrKind = iota
	// AttrInt holds an int64 value.
	AttrInt
	// AttrFloat holds a float64 value.
	AttrFloat
	// AttrBool holds a bool value.
	AttrBool
)

// Attr is one typed key/value annotation on a TraceSpan. Attrs are
// values (no interface boxing) so building them does not allocate
// beyond the containing slice.
type Attr struct {
	Key  string
	Kind AttrKind
	str  string
	num  float64
	i    int64
}

// String builds a string attribute.
func String(key, v string) Attr { return Attr{Key: key, Kind: AttrString, str: v} }

// Int builds an integer attribute.
func Int(key string, v int64) Attr { return Attr{Key: key, Kind: AttrInt, i: v} }

// Float builds a float attribute.
func Float(key string, v float64) Attr { return Attr{Key: key, Kind: AttrFloat, num: v} }

// Bool builds a boolean attribute.
func Bool(key string, v bool) Attr {
	a := Attr{Key: key, Kind: AttrBool}
	if v {
		a.i = 1
	}
	return a
}

// Str returns the string payload ("" for non-string attrs).
func (a Attr) Str() string { return a.str }

// I64 returns the integer payload (0 for non-int attrs; 1/0 for bools).
func (a Attr) I64() int64 { return a.i }

// F64 returns the float payload (0 for non-float attrs).
func (a Attr) F64() float64 { return a.num }

// B reports the boolean payload.
func (a Attr) B() bool { return a.i != 0 }

// Value returns the payload as an interface for generic rendering.
func (a Attr) Value() any {
	switch a.Kind {
	case AttrString:
		return a.str
	case AttrInt:
		return a.i
	case AttrFloat:
		return a.num
	default:
		return a.i != 0
	}
}

// TraceSpan is one timed node of a Trace's span tree: a name, a
// half-open [Start, End) interval, a parent link and typed attributes.
// Snapshots hand out copies; the canonical storage lives inside the
// Trace.
type TraceSpan struct {
	ID     SpanID
	Parent SpanID
	Name   string
	Start  time.Time
	End    time.Time
	Attrs  []Attr
}

// Duration is End-Start (0 while the span is still open).
func (s TraceSpan) Duration() time.Duration {
	if s.End.IsZero() || s.End.Before(s.Start) {
		return 0
	}
	return s.End.Sub(s.Start)
}

// Attr returns the first attribute with the key and whether it exists.
func (s TraceSpan) Attr(key string) (Attr, bool) {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a, true
		}
	}
	return Attr{}, false
}

// DefaultMaxSpans bounds one trace's span count; spans started past
// the cap are dropped (counted in Dropped) so a pathological search
// cannot grow a trace without bound.
const DefaultMaxSpans = 16384

// traceSeq numbers auto-generated trace IDs process-wide.
var traceSeq atomic.Uint64

// Trace is one per-search span tree. Spans are appended under a
// mutex — StartChild/End are called concurrently from worker pools —
// and identified by dense SpanIDs (index+1 into the span slice).
// A nil *Trace is inert: the zero SpanRef it hands out no-ops.
type Trace struct {
	id    string
	clock Clock

	mu       sync.Mutex
	spans    []TraceSpan
	maxSpans int
	dropped  int
}

// NewTrace creates an empty trace. An empty id auto-generates a
// process-unique "trace-<n>"; clock nil defaults to Real.
func NewTrace(id string, clock Clock) *Trace {
	if id == "" {
		id = fmt.Sprintf("trace-%d", traceSeq.Add(1))
	}
	if clock == nil {
		clock = Real
	}
	return &Trace{id: id, clock: clock, maxSpans: DefaultMaxSpans}
}

// ID returns the trace's identifier ("" for nil).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// SetMaxSpans overrides the span-count cap (<=0 restores the default).
func (t *Trace) SetMaxSpans(n int) {
	if t == nil {
		return
	}
	if n <= 0 {
		n = DefaultMaxSpans
	}
	t.mu.Lock()
	t.maxSpans = n
	t.mu.Unlock()
}

// NewSpan starts a span under parent (0 for the root) reading the
// start time from the trace clock. Returns the zero SpanRef when the
// trace is nil or at its span cap.
func (t *Trace) NewSpan(parent SpanID, name string) SpanRef {
	if t == nil {
		return SpanRef{}
	}
	return t.addSpan(parent, name, t.clock.Now(), time.Time{})
}

// AddSpan records an already-timed span — callers that measure
// intervals themselves (the sharded scatter path times each shard
// with atomics and emits one span per shard afterwards) use it to
// attach completed spans without holding the trace mutex mid-flight.
func (t *Trace) AddSpan(parent SpanID, name string, start, end time.Time) SpanRef {
	if t == nil {
		return SpanRef{}
	}
	return t.addSpan(parent, name, start, end)
}

func (t *Trace) addSpan(parent SpanID, name string, start, end time.Time) SpanRef {
	t.mu.Lock()
	if len(t.spans) >= t.maxSpans {
		t.dropped++
		t.mu.Unlock()
		return SpanRef{}
	}
	id := SpanID(len(t.spans) + 1)
	t.spans = append(t.spans, TraceSpan{ID: id, Parent: parent, Name: name, Start: start, End: end})
	t.mu.Unlock()
	return SpanRef{t: t, id: id}
}

// Snapshot returns a copy of every span recorded so far, in start
// order (spans are appended as they start). Attr slices are shared
// with the trace; treat them as read-only.
func (t *Trace) Snapshot() []TraceSpan {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]TraceSpan, len(t.spans))
	copy(out, t.spans)
	t.mu.Unlock()
	return out
}

// Root returns a copy of the first span (the search root) and whether
// the trace has one.
func (t *Trace) Root() (TraceSpan, bool) {
	if t == nil {
		return TraceSpan{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) == 0 {
		return TraceSpan{}, false
	}
	return t.spans[0], true
}

// Start returns the root span's start time (zero when empty).
func (t *Trace) Start() time.Time {
	r, ok := t.Root()
	if !ok {
		return time.Time{}
	}
	return r.Start
}

// Duration returns the root span's duration — the flight recorder's
// tail-based keep compares it against the slow threshold.
func (t *Trace) Duration() time.Duration {
	r, ok := t.Root()
	if !ok {
		return 0
	}
	return r.Duration()
}

// NumSpans returns the recorded span count.
func (t *Trace) NumSpans() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Dropped returns how many spans were rejected by the span cap.
func (t *Trace) Dropped() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// spanOverhead approximates the fixed in-memory cost of one TraceSpan
// / one Attr beyond their string payloads, for the recorder's byte
// accounting.
const (
	spanOverhead = 96
	attrOverhead = 48
)

// Bytes estimates the trace's resident size — the FlightRecorder's
// byte cap accounts traces by this estimate.
func (t *Trace) Bytes() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := int64(len(t.id)) + 64
	for i := range t.spans {
		s := &t.spans[i]
		n += spanOverhead + int64(len(s.Name))
		for _, a := range s.Attrs {
			n += attrOverhead + int64(len(a.Key)) + int64(len(a.str))
		}
	}
	return n
}

// SpanRef is a value handle to one span of a Trace. The zero SpanRef
// — what every constructor returns when tracing is off — is inert:
// StartChild returns another zero ref, SetAttrs and End do nothing,
// and none of them allocate, so traced code needs no branches.
type SpanRef struct {
	t  *Trace
	id SpanID
}

// Active reports whether the ref addresses a live trace; callers
// guard attr-building (which allocates) behind it on hot paths.
func (s SpanRef) Active() bool { return s.t != nil }

// Trace returns the owning trace (nil for the zero ref).
func (s SpanRef) Trace() *Trace { return s.t }

// ID returns the span's id (0 for the zero ref).
func (s SpanRef) ID() SpanID { return s.id }

// Clock returns the owning trace's clock (Real for the zero ref).
func (s SpanRef) Clock() Clock {
	if s.t == nil {
		return Real
	}
	return s.t.clock
}

// StartChild starts a child span under this one. Zero ref in, zero
// ref out — and zero allocations either way until a span is recorded.
func (s SpanRef) StartChild(name string) SpanRef {
	if s.t == nil {
		return SpanRef{}
	}
	return s.t.NewSpan(s.id, name)
}

// AddChild attaches an already-timed child span (see Trace.AddSpan).
func (s SpanRef) AddChild(name string, start, end time.Time) SpanRef {
	if s.t == nil {
		return SpanRef{}
	}
	return s.t.AddSpan(s.id, name, start, end)
}

// SetAttrs appends attributes to the span. Building the attr slice
// allocates, so hot paths call this only under Active().
func (s SpanRef) SetAttrs(attrs ...Attr) {
	if s.t == nil || len(attrs) == 0 {
		return
	}
	s.t.mu.Lock()
	if int(s.id) >= 1 && int(s.id) <= len(s.t.spans) {
		sp := &s.t.spans[s.id-1]
		sp.Attrs = append(sp.Attrs, attrs...)
	}
	s.t.mu.Unlock()
}

// End closes the span at the trace clock's current time and returns
// its duration. No-op (0) on the zero ref; ending twice keeps the
// first end time.
func (s SpanRef) End() time.Duration {
	if s.t == nil {
		return 0
	}
	now := s.t.clock.Now()
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	if int(s.id) < 1 || int(s.id) > len(s.t.spans) {
		return 0
	}
	sp := &s.t.spans[s.id-1]
	if sp.End.IsZero() {
		sp.End = now
	}
	return sp.Duration()
}

// EndAt closes the span at an explicit time (for callers that timed
// the interval themselves).
func (s SpanRef) EndAt(end time.Time) {
	if s.t == nil {
		return
	}
	s.t.mu.Lock()
	if int(s.id) >= 1 && int(s.id) <= len(s.t.spans) {
		sp := &s.t.spans[s.id-1]
		if sp.End.IsZero() {
			sp.End = end
		}
	}
	s.t.mu.Unlock()
}

// Span returns a copy of the underlying TraceSpan record (ok=false
// for the zero ref).
func (s SpanRef) Span() (TraceSpan, bool) {
	if s.t == nil {
		return TraceSpan{}, false
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	if int(s.id) < 1 || int(s.id) > len(s.t.spans) {
		return TraceSpan{}, false
	}
	return s.t.spans[s.id-1], true
}

// spanCtxKey keys the current SpanRef in a context.Context.
type spanCtxKey struct{}

// ContextWithSpan returns a context carrying s as the current span.
// An inactive ref returns ctx unchanged (no allocation), so the
// disabled path threads contexts for free.
func ContextWithSpan(ctx context.Context, s SpanRef) context.Context {
	if s.t == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the current span carried by ctx (the zero
// SpanRef when none). Allocation-free.
func SpanFromContext(ctx context.Context) SpanRef {
	if ctx == nil {
		return SpanRef{}
	}
	s, _ := ctx.Value(spanCtxKey{}).(SpanRef)
	return s
}
