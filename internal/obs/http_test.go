package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string, http.Header) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestMuxEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("acq_http_total", "Requests.").Add(11)
	rec := NewFlightRecorder(RecorderConfig{})
	clk := NewFakeClock(time.Unix(100, 0)).AutoAdvance(time.Millisecond)
	tr := NewTrace("search-9", clk)
	root := tr.NewSpan(0, "search")
	root.StartChild("layer").End()
	root.End()
	rec.Add(tr)
	srv := httptest.NewServer(NewMux(reg, rec))
	defer srv.Close()

	code, body, hdr := get(t, srv, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("/metrics content-type %q", ct)
	}
	if !strings.Contains(body, "acq_http_total 11") {
		t.Errorf("/metrics body:\n%s", body)
	}
	checkExposition(t, body)

	code, body, _ = get(t, srv, "/healthz")
	if code != 200 || strings.TrimSpace(body) != "ok" {
		t.Errorf("/healthz = %d %q", code, body)
	}

	code, body, _ = get(t, srv, "/debug/pprof/")
	if code != 200 || !strings.Contains(body, "profile") {
		t.Errorf("/debug/pprof/ = %d", code)
	}

	code, _, _ = get(t, srv, "/debug/vars")
	if code != 200 {
		t.Errorf("/debug/vars = %d", code)
	}

	code, body, _ = get(t, srv, "/debug/traces")
	if code != 200 || !strings.Contains(body, "search-9") {
		t.Errorf("/debug/traces = %d:\n%s", code, body)
	}

	code, body, hdr = get(t, srv, "/debug/traces/search-9")
	if code != 200 {
		t.Fatalf("/debug/traces/search-9 status %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("trace content-type %q", ct)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("trace JSON invalid: %v\n%s", err, body)
	}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if n, ok := ev["name"].(string); ok {
			names[n] = true
		}
	}
	if !names["search"] || !names["layer"] {
		t.Errorf("trace events missing search/layer spans: %v", names)
	}

	code, _, _ = get(t, srv, "/debug/traces/nope")
	if code != 404 {
		t.Errorf("/debug/traces/nope = %d, want 404", code)
	}
}

func TestServeBindsAndShutsDown(t *testing.T) {
	reg := NewRegistry()
	addr, shutdown, err := Serve("127.0.0.1:0", reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	shutdown()
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Error("server still reachable after shutdown")
	}
}
