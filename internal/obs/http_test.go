package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string, http.Header) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestMuxEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("acq_http_total", "Requests.").Add(11)
	srv := httptest.NewServer(NewMux(reg))
	defer srv.Close()

	code, body, hdr := get(t, srv, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("/metrics content-type %q", ct)
	}
	if !strings.Contains(body, "acq_http_total 11") {
		t.Errorf("/metrics body:\n%s", body)
	}
	checkExposition(t, body)

	code, body, _ = get(t, srv, "/healthz")
	if code != 200 || strings.TrimSpace(body) != "ok" {
		t.Errorf("/healthz = %d %q", code, body)
	}

	code, body, _ = get(t, srv, "/debug/pprof/")
	if code != 200 || !strings.Contains(body, "profile") {
		t.Errorf("/debug/pprof/ = %d", code)
	}

	code, _, _ = get(t, srv, "/debug/vars")
	if code != 200 {
		t.Errorf("/debug/vars = %d", code)
	}
}

func TestServeBindsAndShutsDown(t *testing.T) {
	reg := NewRegistry()
	addr, shutdown, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	shutdown()
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Error("server still reachable after shutdown")
	}
}
