package obs

import (
	"context"
	"log/slog"
	"sync"
)

// Observer bundles the three observability channels — metric
// registry, phase spans, structured event log — behind one handle
// that the search, engine and baselines accept. A nil *Observer is
// fully inert: every method is a cheap no-op, so uninstrumented runs
// pay a single nil check on the hot path.
//
// Observers are immutable; WithClock / WithLogger / ForSearch return
// derived observers sharing the same registry (and phase-histogram
// cache), so one process-wide registry serves many searches.
type Observer struct {
	reg      *Registry
	clock    Clock
	logger   *slog.Logger
	phases   *PhaseTimes
	searchID string
	recorder *FlightRecorder

	// phaseHists caches phase-name -> duration histogram so Span.End
	// avoids the registry's name formatting and map lookup.
	phaseHists *sync.Map
}

// NewObserver creates an observer over the registry (which may be nil
// for spans/logs without metrics). The clock defaults to Real.
func NewObserver(reg *Registry) *Observer {
	return &Observer{reg: reg, clock: Real, phaseHists: &sync.Map{}}
}

// WithClock returns a derived observer reading time from c.
func (o *Observer) WithClock(c Clock) *Observer {
	if o == nil || c == nil {
		return o
	}
	d := *o
	d.clock = c
	return &d
}

// WithLogger returns a derived observer emitting structured events
// through l (typically slog.New(slog.NewJSONHandler(...))).
func (o *Observer) WithLogger(l *slog.Logger) *Observer {
	if o == nil {
		return o
	}
	d := *o
	d.logger = l
	return &d
}

// WithRecorder returns a derived observer whose searches build span
// trees and deposit them into rec on completion — the switch that
// turns hierarchical tracing on. Nil rec detaches (tracing off).
func (o *Observer) WithRecorder(rec *FlightRecorder) *Observer {
	if o == nil {
		return nil
	}
	d := *o
	d.recorder = rec
	return &d
}

// Recorder returns the attached flight recorder (nil-safe; nil means
// tracing is off).
func (o *Observer) Recorder() *FlightRecorder {
	if o == nil {
		return nil
	}
	return o.recorder
}

// TracingEnabled reports whether searches under this observer should
// record span trees.
func (o *Observer) TracingEnabled() bool {
	return o != nil && o.recorder != nil
}

// ForSearch returns a derived observer scoped to one refinement
// search: events carry search_id=id, and phase spans additionally
// accumulate into a fresh PhaseTimes collector for the search's
// report.
func (o *Observer) ForSearch(id string) *Observer {
	if o == nil {
		return nil
	}
	d := *o
	d.searchID = id
	d.phases = NewPhaseTimes()
	return &d
}

// Registry returns the underlying registry (nil-safe).
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Clock returns the observer's clock, or Real for a nil observer —
// callers can always time through it.
func (o *Observer) Clock() Clock {
	if o == nil || o.clock == nil {
		return Real
	}
	return o.clock
}

// SearchID returns the id set by ForSearch ("" otherwise).
func (o *Observer) SearchID() string {
	if o == nil {
		return ""
	}
	return o.searchID
}

// Phases returns the per-search phase breakdown accumulated since
// ForSearch (nil for unscoped or nil observers).
func (o *Observer) Phases() map[string]PhaseStat {
	if o == nil {
		return nil
	}
	return o.phases.Snapshot()
}

// Counter registers/fetches a counter on the observer's registry.
func (o *Observer) Counter(name, help string) *Counter {
	if o == nil {
		return nil
	}
	return o.reg.Counter(name, help)
}

// Gauge registers/fetches a gauge on the observer's registry.
func (o *Observer) Gauge(name, help string) *Gauge {
	if o == nil {
		return nil
	}
	return o.reg.Gauge(name, help)
}

// Histogram registers/fetches a histogram on the observer's registry.
func (o *Observer) Histogram(name, help string, buckets []float64) *Histogram {
	if o == nil {
		return nil
	}
	return o.reg.Histogram(name, help, buckets)
}

// StartPhase opens a timing span for the named phase. The returned
// Span is a value; End() folds the duration into the phase histogram
// and the search's phase collector.
func (o *Observer) StartPhase(name string) Span {
	if o == nil {
		return Span{}
	}
	return Span{o: o, name: name, start: o.clock.Now()}
}

// phaseHist resolves (caching) the duration histogram for a phase.
func (o *Observer) phaseHist(name string) *Histogram {
	if h, ok := o.phaseHists.Load(name); ok {
		return h.(*Histogram)
	}
	h := o.reg.Histogram(`acquire_phase_duration_seconds{phase="`+name+`"}`,
		"Duration of search/engine phases by phase name.", nil)
	o.phaseHists.Store(name, h)
	return h
}

// LogEnabled reports whether structured events at the level would be
// emitted — callers use it to skip building attribute lists (and
// their allocations) when logging is off.
func (o *Observer) LogEnabled(level slog.Level) bool {
	return o != nil && o.logger != nil && o.logger.Enabled(context.Background(), level)
}

// Log emits one structured event at the level with the given
// alternating key/value attrs; search-scoped observers append
// search_id automatically. No-op when disabled.
func (o *Observer) Log(level slog.Level, event string, attrs ...any) {
	if !o.LogEnabled(level) {
		return
	}
	if o.searchID != "" {
		attrs = append(attrs, "search_id", o.searchID)
	}
	o.logger.Log(context.Background(), level, event, attrs...)
}

// Info emits an info-level event.
func (o *Observer) Info(event string, attrs ...any) { o.Log(slog.LevelInfo, event, attrs...) }

// Debug emits a debug-level event.
func (o *Observer) Debug(event string, attrs ...any) { o.Log(slog.LevelDebug, event, attrs...) }
