// Package agg implements the aggregate functions ACQUIRE supports and
// the optimal substructure property (OSP, §2.6 of the paper) they must
// satisfy: the aggregate of a query Q1 containing Q2 is computable from
// the aggregate of Q2 and the aggregate of Q1−Q2, without re-scanning.
//
// Every aggregate is represented as a Partial — a mergeable summary —
// plus a Spec describing how tuples feed it and how a final value is
// extracted. COUNT, SUM, MIN and MAX merge directly; AVG decomposes
// into a (SUM, COUNT) pair as §2.6 prescribes. User-defined aggregates
// register a commutative monoid over float64 summaries.
package agg

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"acquire/internal/relq"
)

// Partial is a mergeable aggregate summary: sum and count are carried
// together so AVG (and UDAs built on them) need no second pass.
type Partial struct {
	Count int64
	Sum   float64
	Min   float64
	Max   float64
	// User is the UDA's own summary value when a UDA is in play.
	User float64
}

// Zero returns the identity Partial: merging it changes nothing.
func Zero() Partial {
	return Partial{Min: math.Inf(1), Max: math.Inf(-1)}
}

// Step folds one tuple's aggregate-attribute value into the partial.
func (p *Partial) Step(v float64) {
	p.Count++
	p.Sum += v
	if v < p.Min {
		p.Min = v
	}
	if v > p.Max {
		p.Max = v
	}
}

// Merge combines two partials; this is the OSP merge of §2.6. It is
// commutative and associative with Zero as identity (property-tested).
func Merge(a, b Partial) Partial {
	return Partial{
		Count: a.Count + b.Count,
		Sum:   a.Sum + b.Sum,
		Min:   math.Min(a.Min, b.Min),
		Max:   math.Max(a.Max, b.Max),
		User:  a.User + b.User,
	}
}

// ApproxEqual compares two partials field by field: Count, Min and Max
// must match exactly (merging picks values, it never rounds them),
// while Sum and User — whose float association differs between an
// incremental recurrence and a direct scan — are compared with the
// given relative tolerance.
func ApproxEqual(a, b Partial, tol float64) bool {
	if a.Count != b.Count {
		return false
	}
	// Min/Max of empty partials are ±Inf; compare via equality that
	// treats equal infinities as equal (== does).
	if a.Min != b.Min || a.Max != b.Max {
		return false
	}
	near := func(x, y float64) bool {
		return math.Abs(x-y) <= tol*(1+math.Abs(x)+math.Abs(y))
	}
	return near(a.Sum, b.Sum) && near(a.User, b.User)
}

// Spec describes which aggregate the constraint asks for.
type Spec struct {
	Func relq.AggFunc
	// UserName selects a registered UDA when Func == relq.AggUser.
	UserName string
}

// SpecFor builds a Spec from a parsed constraint, resolving UDA names
// against the registry.
func SpecFor(c relq.Constraint) (Spec, error) {
	s := Spec{Func: c.Func, UserName: c.UserName}
	if c.Func == relq.AggUser {
		if _, err := lookupUDA(c.UserName); err != nil {
			return Spec{}, err
		}
	}
	return s, nil
}

// Final extracts the aggregate value from a partial. An empty partial
// yields 0 for COUNT/SUM and NaN for MIN/MAX/AVG (no defined value over
// an empty result, matching SQL's NULL).
func (s Spec) Final(p Partial) float64 {
	switch s.Func {
	case relq.AggCount:
		return float64(p.Count)
	case relq.AggSum:
		return p.Sum
	case relq.AggMin:
		if p.Count == 0 {
			return math.NaN()
		}
		return p.Min
	case relq.AggMax:
		if p.Count == 0 {
			return math.NaN()
		}
		return p.Max
	case relq.AggAvg:
		if p.Count == 0 {
			return math.NaN()
		}
		return p.Sum / float64(p.Count)
	case relq.AggUser:
		u, err := lookupUDA(s.UserName)
		if err != nil {
			return math.NaN()
		}
		return u.Final(p)
	default:
		return math.NaN()
	}
}

// StepValue folds a tuple value under the spec (UDAs may transform the
// input before accumulation).
func (s Spec) StepValue(p *Partial, v float64) {
	p.Step(v)
	if s.Func == relq.AggUser {
		if u, err := lookupUDA(s.UserName); err == nil {
			p.User += u.Map(v)
		}
	}
}

// Monotone reports whether growing the result set can only grow the
// aggregate value. COUNT and MAX are monotone always; SUM is monotone
// over non-negative attributes (the constraint targets the paper uses —
// quantities, counts — are non-negative; see relq.Constraint.Validate).
// Monotone aggregates let the search stop expanding a direction that
// already overshoots.
func (s Spec) Monotone() bool {
	switch s.Func {
	case relq.AggCount, relq.AggMax, relq.AggSum:
		return true
	default:
		return false
	}
}

// UDA is a user-defined aggregate satisfying OSP: tuples are mapped to
// float64 contributions which are summed across disjoint parts, and a
// final function combines the built-in summaries with the user sum.
// This captures §2.6(b): aggregates decomposable into OSP parts.
type UDA struct {
	Name string
	// Map transforms a tuple's attribute value into its additive
	// contribution.
	Map func(v float64) float64
	// Final extracts the aggregate from the accumulated partial.
	Final func(p Partial) float64
}

var (
	udaMu  sync.RWMutex
	udaReg = make(map[string]UDA)
)

// RegisterUDA registers a user-defined aggregate by name.
func RegisterUDA(u UDA) error {
	if u.Name == "" || u.Map == nil || u.Final == nil {
		return fmt.Errorf("agg: UDA must have name, map and final")
	}
	udaMu.Lock()
	defer udaMu.Unlock()
	if _, dup := udaReg[u.Name]; dup {
		return fmt.Errorf("agg: UDA %q already registered", u.Name)
	}
	udaReg[u.Name] = u
	return nil
}

// UnregisterUDA removes a UDA (tests use this to stay hermetic).
func UnregisterUDA(name string) {
	udaMu.Lock()
	defer udaMu.Unlock()
	delete(udaReg, name)
}

// RegisteredUDAs lists registered UDA names, sorted.
func RegisteredUDAs() []string {
	udaMu.RLock()
	defer udaMu.RUnlock()
	names := make([]string, 0, len(udaReg))
	for n := range udaReg {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func lookupUDA(name string) (UDA, error) {
	udaMu.RLock()
	defer udaMu.RUnlock()
	u, ok := udaReg[name]
	if !ok {
		return UDA{}, fmt.Errorf("agg: unknown UDA %q", name)
	}
	return u, nil
}

// HasOSP reports whether the aggregate function satisfies the optimal
// substructure property directly or via decomposition (§2.6). STDDEV is
// the paper's canonical counter-example; it is representable as a UDA
// only approximately and is rejected by SpecFor absent registration.
func HasOSP(f relq.AggFunc) bool {
	switch f {
	case relq.AggCount, relq.AggSum, relq.AggMin, relq.AggMax, relq.AggAvg, relq.AggUser:
		return true
	default:
		return false
	}
}
