package agg

import (
	"math"

	"acquire/internal/relq"
)

// ErrorFunc measures the aggregate error Err_A between the expected
// (target) and actual aggregate values (§2.5). Implementations must be
// non-negative and zero when the constraint is exactly met.
type ErrorFunc func(expected, actual float64) float64

// RelativeError is Eq. 4: |A_exp − A_actual| / A_exp. It is the
// appropriate default for COUNT and AVG constraints.
func RelativeError(expected, actual float64) float64 {
	if math.IsNaN(actual) {
		return math.Inf(1) // empty result: no aggregate value at all
	}
	if expected == 0 {
		if actual == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(expected-actual) / expected
}

// HingeError penalises only undershoot (§2.5's one-sided measure for
// SUM/MIN/MAX with >= constraints), normalised by the target so it is
// comparable with the δ threshold:
//
//	Err = max(0, (A_exp − A_actual)) / A_exp
func HingeError(expected, actual float64) float64 {
	if math.IsNaN(actual) {
		return math.Inf(1)
	}
	if actual >= expected {
		return 0
	}
	if expected == 0 {
		return 0
	}
	return (expected - actual) / expected
}

// DefaultError returns the paper's sensible-default error function for
// the constraint: relative error for = constraints on COUNT/AVG, hinge
// for inequality constraints and for SUM/MIN/MAX (§2.5).
func DefaultError(c relq.Constraint) ErrorFunc {
	if c.Op == relq.CmpGE || c.Op == relq.CmpGT {
		return HingeError
	}
	switch c.Func {
	case relq.AggSum, relq.AggMin, relq.AggMax:
		return HingeError
	default:
		return RelativeError
	}
}

// Satisfied reports whether actual meets the constraint within δ under
// the error function.
func Satisfied(errFn ErrorFunc, expected, actual, delta float64) bool {
	return errFn(expected, actual) <= delta
}

// Overshoots reports whether the actual aggregate exceeds the target by
// more than δ in relative terms — the trigger for cell repartitioning
// (§6). Only meaningful for monotone aggregates with =-constraints;
// hinge-error constraints never overshoot.
func Overshoots(c relq.Constraint, actual, delta float64) bool {
	if c.Op != relq.CmpEQ {
		return false
	}
	if math.IsNaN(actual) || c.Target == 0 {
		return false
	}
	return (actual-c.Target)/c.Target > delta
}
