package agg

import (
	"math"
	"testing"
	"testing/quick"

	"acquire/internal/relq"
)

func specForUDA(t *testing.T, name string) Spec {
	t.Helper()
	spec, err := SpecFor(relq.Constraint{
		Func: relq.AggUser, UserName: name,
		Attr: relq.ColumnRef{Table: "t", Column: "x"}, Op: relq.CmpGE, Target: 1,
	})
	if err != nil {
		t.Fatalf("SpecFor(%s): %v", name, err)
	}
	return spec
}

func cleanupStandardUDAs(t *testing.T) {
	t.Helper()
	t.Cleanup(func() {
		for _, u := range StandardUDAs() {
			UnregisterUDA(u.Name)
		}
	})
}

func TestStandardUDAValues(t *testing.T) {
	cleanupStandardUDAs(t)
	RegisterStandardUDAs()
	vals := []float64{3, -4, 0, 12}

	cases := []struct {
		name string
		want float64
	}{
		{"SUMSQ", 9 + 16 + 0 + 144},
		{"L2NORM", 13}, // sqrt(169)
		{"SUMABS", 19},
		{"RMS", math.Sqrt(169.0 / 4)},
		{"COUNTPOS", 2},
		{"LOGSUM", math.Log1p(3) + math.Log1p(0) + math.Log1p(0) + math.Log1p(12)},
	}
	for _, c := range cases {
		spec := specForUDA(t, c.name)
		p := Zero()
		for _, v := range vals {
			spec.StepValue(&p, v)
		}
		if got := spec.Final(p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%s = %v, want %v", c.name, got, c.want)
		}
	}
}

// Property (§2.6(b)): every standard UDA merges across disjoint parts:
// Final(fold(all)) == Final(Merge(fold(part1), fold(part2))).
func TestStandardUDAsSatisfyOSP(t *testing.T) {
	cleanupStandardUDAs(t)
	RegisterStandardUDAs()
	for _, u := range StandardUDAs() {
		spec := specForUDA(t, u.Name)
		f := func(vals []float64, splitAt uint) bool {
			clampDomain(vals)
			if len(vals) == 0 {
				return true
			}
			k := int(splitAt % uint(len(vals)))
			whole := Zero()
			for _, v := range vals {
				spec.StepValue(&whole, v)
			}
			p1, p2 := Zero(), Zero()
			for _, v := range vals[:k] {
				spec.StepValue(&p1, v)
			}
			for _, v := range vals[k:] {
				spec.StepValue(&p2, v)
			}
			a, b := spec.Final(whole), spec.Final(Merge(p1, p2))
			if math.IsNaN(a) && math.IsNaN(b) {
				return true
			}
			return math.Abs(a-b) <= 1e-6*(1+math.Abs(a))
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%s: %v", u.Name, err)
		}
	}
}

func TestRegisterStandardUDAsIdempotent(t *testing.T) {
	cleanupStandardUDAs(t)
	RegisterStandardUDAs()
	before := len(RegisteredUDAs())
	RegisterStandardUDAs() // second call must not error or duplicate
	if after := len(RegisteredUDAs()); after != before {
		t.Errorf("re-registration changed count: %d -> %d", before, after)
	}
}

func TestRMSEmpty(t *testing.T) {
	cleanupStandardUDAs(t)
	RegisterStandardUDAs()
	spec := specForUDA(t, "RMS")
	if got := spec.Final(Zero()); !math.IsNaN(got) {
		t.Errorf("RMS(empty) = %v, want NaN", got)
	}
}
