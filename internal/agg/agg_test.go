package agg

import (
	"math"
	"testing"
	"testing/quick"

	"acquire/internal/relq"
)

// clampDomain maps arbitrary generated floats onto the finite, modest
// magnitudes attribute domains actually take; summation order tolerance
// in these tests assumes no catastrophic cancellation at 1e308.
func clampDomain(vals []float64) {
	for i, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			vals[i] = 1
			continue
		}
		vals[i] = math.Mod(v, 1e6)
	}
}

func partialOf(vals ...float64) Partial {
	p := Zero()
	for _, v := range vals {
		p.Step(v)
	}
	return p
}

func TestZeroIsIdentity(t *testing.T) {
	p := partialOf(3, -1, 7)
	if got := Merge(p, Zero()); got != p {
		t.Errorf("Merge(p, Zero()) = %+v, want %+v", got, p)
	}
	if got := Merge(Zero(), p); got != p {
		t.Errorf("Merge(Zero(), p) = %+v, want %+v", got, p)
	}
}

// Property (§2.6 OSP): folding a slice in one pass equals merging the
// partials of any split of the slice.
func TestMergeEqualsSplitFold(t *testing.T) {
	f := func(vals []float64, splitAt uint) bool {
		clampDomain(vals)
		if len(vals) == 0 {
			return true
		}
		k := int(splitAt % uint(len(vals)))
		whole := partialOf(vals...)
		merged := Merge(partialOf(vals[:k]...), partialOf(vals[k:]...))
		return whole.Count == merged.Count &&
			math.Abs(whole.Sum-merged.Sum) <= 1e-9*(1+math.Abs(whole.Sum)) &&
			whole.Min == merged.Min && whole.Max == merged.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Merge is commutative.
func TestMergeCommutative(t *testing.T) {
	f := func(a, b []float64) bool {
		clampDomain(a)
		clampDomain(b)
		pa, pb := partialOf(a...), partialOf(b...)
		x, y := Merge(pa, pb), Merge(pb, pa)
		return x.Count == y.Count && x.Min == y.Min && x.Max == y.Max &&
			math.Abs(x.Sum-y.Sum) <= 1e-9*(1+math.Abs(x.Sum))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSpecFinal(t *testing.T) {
	p := partialOf(2, 8, 5)
	cases := []struct {
		f    relq.AggFunc
		want float64
	}{
		{relq.AggCount, 3},
		{relq.AggSum, 15},
		{relq.AggMin, 2},
		{relq.AggMax, 8},
		{relq.AggAvg, 5},
	}
	for _, c := range cases {
		if got := (Spec{Func: c.f}).Final(p); got != c.want {
			t.Errorf("%s = %v, want %v", c.f, got, c.want)
		}
	}
}

func TestSpecFinalEmpty(t *testing.T) {
	p := Zero()
	if got := (Spec{Func: relq.AggCount}).Final(p); got != 0 {
		t.Errorf("COUNT(empty) = %v", got)
	}
	if got := (Spec{Func: relq.AggSum}).Final(p); got != 0 {
		t.Errorf("SUM(empty) = %v", got)
	}
	for _, f := range []relq.AggFunc{relq.AggMin, relq.AggMax, relq.AggAvg} {
		if got := (Spec{Func: f}).Final(p); !math.IsNaN(got) {
			t.Errorf("%s(empty) = %v, want NaN", f, got)
		}
	}
}

func TestUDARegistry(t *testing.T) {
	sumsq := UDA{
		Name:  "sumsq",
		Map:   func(v float64) float64 { return v * v },
		Final: func(p Partial) float64 { return p.User },
	}
	if err := RegisterUDA(sumsq); err != nil {
		t.Fatalf("RegisterUDA: %v", err)
	}
	defer UnregisterUDA("sumsq")
	if err := RegisterUDA(sumsq); err == nil {
		t.Error("duplicate RegisterUDA: expected error")
	}
	if err := RegisterUDA(UDA{Name: "bad"}); err == nil {
		t.Error("incomplete UDA: expected error")
	}

	spec, err := SpecFor(relq.Constraint{
		Func: relq.AggUser, UserName: "sumsq",
		Attr: relq.ColumnRef{Table: "t", Column: "x"}, Op: relq.CmpEQ, Target: 1,
	})
	if err != nil {
		t.Fatalf("SpecFor: %v", err)
	}
	p := Zero()
	for _, v := range []float64{1, 2, 3} {
		spec.StepValue(&p, v)
	}
	if got := spec.Final(p); got != 14 {
		t.Errorf("sumsq = %v, want 14", got)
	}

	// UDA merging satisfies OSP too.
	p1, p2 := Zero(), Zero()
	spec.StepValue(&p1, 1)
	spec.StepValue(&p2, 2)
	spec.StepValue(&p2, 3)
	if got := spec.Final(Merge(p1, p2)); got != 14 {
		t.Errorf("merged sumsq = %v, want 14", got)
	}

	found := false
	for _, n := range RegisteredUDAs() {
		if n == "sumsq" {
			found = true
		}
	}
	if !found {
		t.Error("RegisteredUDAs missing sumsq")
	}

	if _, err := SpecFor(relq.Constraint{
		Func: relq.AggUser, UserName: "nope",
		Attr: relq.ColumnRef{Table: "t", Column: "x"}, Op: relq.CmpEQ, Target: 1,
	}); err == nil {
		t.Error("SpecFor unknown UDA: expected error")
	}
}

func TestHasOSP(t *testing.T) {
	for _, f := range []relq.AggFunc{relq.AggCount, relq.AggSum, relq.AggMin, relq.AggMax, relq.AggAvg, relq.AggUser} {
		if !HasOSP(f) {
			t.Errorf("HasOSP(%s) = false", f)
		}
	}
	if HasOSP(relq.AggFunc(99)) {
		t.Error("HasOSP(invalid) = true")
	}
}

func TestMonotone(t *testing.T) {
	if !(Spec{Func: relq.AggCount}).Monotone() || !(Spec{Func: relq.AggSum}).Monotone() || !(Spec{Func: relq.AggMax}).Monotone() {
		t.Error("COUNT/SUM/MAX should be monotone")
	}
	if (Spec{Func: relq.AggMin}).Monotone() || (Spec{Func: relq.AggAvg}).Monotone() {
		t.Error("MIN/AVG should not be monotone")
	}
}

func TestRelativeError(t *testing.T) {
	if got := RelativeError(100, 95); got != 0.05 {
		t.Errorf("RelativeError(100,95) = %v", got)
	}
	if got := RelativeError(100, 105); got != 0.05 {
		t.Errorf("RelativeError(100,105) = %v", got)
	}
	if got := RelativeError(0, 0); got != 0 {
		t.Errorf("RelativeError(0,0) = %v", got)
	}
	if got := RelativeError(0, 5); !math.IsInf(got, 1) {
		t.Errorf("RelativeError(0,5) = %v", got)
	}
	if got := RelativeError(10, math.NaN()); !math.IsInf(got, 1) {
		t.Errorf("RelativeError(·, NaN) = %v", got)
	}
}

func TestHingeError(t *testing.T) {
	if got := HingeError(100, 120); got != 0 {
		t.Errorf("overshoot hinge = %v, want 0", got)
	}
	if got := HingeError(100, 80); got != 0.2 {
		t.Errorf("undershoot hinge = %v, want 0.2", got)
	}
	if got := HingeError(0, 0); got != 0 {
		t.Errorf("HingeError(0,0) = %v", got)
	}
	if got := HingeError(10, math.NaN()); !math.IsInf(got, 1) {
		t.Errorf("HingeError(·, NaN) = %v", got)
	}
}

func TestDefaultError(t *testing.T) {
	relCases := []relq.Constraint{
		{Func: relq.AggCount, Op: relq.CmpEQ, Target: 10},
		{Func: relq.AggAvg, Attr: relq.ColumnRef{Table: "t", Column: "x"}, Op: relq.CmpEQ, Target: 10},
	}
	for _, c := range relCases {
		fn := DefaultError(c)
		if fn(100, 120) == 0 {
			t.Errorf("%s =-constraint should penalise overshoot", c.Func)
		}
	}
	hingeCases := []relq.Constraint{
		{Func: relq.AggSum, Attr: relq.ColumnRef{Table: "t", Column: "x"}, Op: relq.CmpEQ, Target: 10},
		{Func: relq.AggCount, Op: relq.CmpGE, Target: 10},
	}
	for _, c := range hingeCases {
		fn := DefaultError(c)
		if fn(100, 120) != 0 {
			t.Errorf("%s %s-constraint should not penalise overshoot", c.Func, c.Op)
		}
	}
}

func TestSatisfiedAndOvershoots(t *testing.T) {
	if !Satisfied(RelativeError, 100, 96, 0.05) {
		t.Error("96 within 5% of 100")
	}
	if Satisfied(RelativeError, 100, 90, 0.05) {
		t.Error("90 not within 5% of 100")
	}
	c := relq.Constraint{Func: relq.AggCount, Op: relq.CmpEQ, Target: 100}
	if !Overshoots(c, 120, 0.05) {
		t.Error("120 overshoots 100 at δ=0.05")
	}
	if Overshoots(c, 104, 0.05) {
		t.Error("104 does not overshoot 100 at δ=0.05")
	}
	cGE := relq.Constraint{Func: relq.AggCount, Op: relq.CmpGE, Target: 100}
	if Overshoots(cGE, 1e9, 0.05) {
		t.Error(">= constraints never overshoot")
	}
	if Overshoots(c, math.NaN(), 0.05) {
		t.Error("NaN never overshoots")
	}
}
