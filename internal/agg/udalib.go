package agg

import "math"

// StandardUDAs returns a library of ready-made user-defined aggregates,
// each satisfying the optimal substructure property of §2.6(b): the
// per-tuple contribution is additive across disjoint parts and the
// final function combines only accumulated summaries.
//
// Register the ones a deployment needs:
//
//	for _, u := range agg.StandardUDAs() {
//	    _ = agg.RegisterUDA(u) // ignore duplicates on re-init
//	}
func StandardUDAs() []UDA {
	return []UDA{
		{
			// SUMSQ: total squared value; with SUM and COUNT it yields
			// variance-style dispersion without violating OSP the way
			// direct STDDEV would.
			Name:  "SUMSQ",
			Map:   func(v float64) float64 { return v * v },
			Final: func(p Partial) float64 { return p.User },
		},
		{
			// L2NORM: Euclidean norm of the attribute vector.
			Name:  "L2NORM",
			Map:   func(v float64) float64 { return v * v },
			Final: func(p Partial) float64 { return math.Sqrt(p.User) },
		},
		{
			// SUMABS: total magnitude.
			Name:  "SUMABS",
			Map:   math.Abs,
			Final: func(p Partial) float64 { return p.User },
		},
		{
			// RMS: root mean square — decomposes into SUMSQ and COUNT,
			// both OSP, exactly the §2.6 AVG pattern.
			Name: "RMS",
			Map:  func(v float64) float64 { return v * v },
			Final: func(p Partial) float64 {
				if p.Count == 0 {
					return math.NaN()
				}
				return math.Sqrt(p.User / float64(p.Count))
			},
		},
		{
			// COUNTPOS: how many tuples have a positive attribute.
			Name: "COUNTPOS",
			Map: func(v float64) float64 {
				if v > 0 {
					return 1
				}
				return 0
			},
			Final: func(p Partial) float64 { return p.User },
		},
		{
			// LOGSUM: sum of log1p values — a diminishing-returns
			// "utility" total used in budget-style constraints.
			Name:  "LOGSUM",
			Map:   func(v float64) float64 { return math.Log1p(math.Max(v, 0)) },
			Final: func(p Partial) float64 { return p.User },
		},
	}
}

// RegisterStandardUDAs registers every standard UDA, skipping names
// already present (safe to call from multiple initialisers).
func RegisterStandardUDAs() {
	registered := make(map[string]struct{})
	for _, n := range RegisteredUDAs() {
		registered[n] = struct{}{}
	}
	for _, u := range StandardUDAs() {
		if _, dup := registered[u.Name]; dup {
			continue
		}
		// Name/Map/Final are always set for library UDAs; the only
		// error is duplication, raced registrations included.
		_ = RegisterUDA(u)
	}
}
