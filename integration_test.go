// Package repro_test's integration tests exercise whole-system flows
// across module boundaries: SQL text → refinement → rendered SQL →
// re-execution, Definition 1's guarantees checked against exhaustive
// grid search, frontier/explorer equivalences, and failure injection.
package repro_test

import (
	"math"
	"strings"
	"testing"

	"acquire/acq"
)

// TestDefinitionOneAgainstExhaustive2D validates Definition 1 on a 2-D
// refined space by brute force: enumerate every grid point, find the
// optimal satisfying layer, and check that ACQUIRE's answers (a) meet
// δ and (b) sit within γ of that optimum.
func TestDefinitionOneAgainstExhaustive2D(t *testing.T) {
	s, err := acq.NewUsersSession(20_000, 0, 77)
	if err != nil {
		t.Fatal(err)
	}
	const gamma, delta = 12.0, 0.04
	sql := `SELECT * FROM users CONSTRAINT COUNT(*) = 5000
		WHERE age <= 30 AND income <= 60000`
	q, err := s.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Refine(q, acq.Options{Gamma: gamma, Delta: delta})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfied {
		t.Fatalf("refinement failed: %+v", res)
	}

	// Exhaustive: walk the grid up to a comfortable bound, executing
	// every point directly via calibrated clones.
	step := gamma / 2
	opt := math.Inf(1)
	for u1 := 0; u1 <= 40; u1++ {
		for u2 := 0; u2 <= 40; u2++ {
			scores := []float64{float64(u1) * step, float64(u2) * step}
			clone := q.Clone()
			for i := range clone.Dims {
				clone.Dims[i].Bound = clone.Dims[i].BoundAt(scores[i])
			}
			actual, err := s.Estimate(clone)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(actual-q.Constraint.Target)/q.Constraint.Target <= delta {
				if qs := scores[0] + scores[1]; qs < opt {
					opt = qs
				}
			}
		}
	}
	if math.IsInf(opt, 1) {
		t.Skip("no grid point satisfies at this seed; nothing to compare")
	}
	for _, rq := range res.Queries {
		if rq.Err > delta+1e-12 {
			t.Errorf("answer err %v > δ", rq.Err)
		}
		if rq.QScore > opt+gamma+1e-9 {
			t.Errorf("answer QScore %v exceeds optimum %v + γ", rq.QScore, opt)
		}
	}
	if res.Best.QScore > opt+1e-9 {
		t.Errorf("best answer %v worse than exhaustive optimum %v (grid answers must match)", res.Best.QScore, opt)
	}
}

// TestRefinedSQLReExecutes closes the loop: the SQL text ACQUIRE
// renders, parsed and executed as an ordinary query, must attain the
// aggregate the search reported.
func TestRefinedSQLReExecutes(t *testing.T) {
	s, err := acq.NewTPCHSession(20_000, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RefineSQL(`SELECT * FROM supplier, part, partsupp
		CONSTRAINT SUM(ps_availqty) >= 9M
		WHERE (s_suppkey = ps_suppkey) NOREFINE AND
		      (p_partkey = ps_partkey) NOREFINE AND
		      (p_retailprice < 1300) AND (s_acctbal < 2500)`,
		acq.Options{Gamma: 30, Delta: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfied {
		t.Fatalf("not satisfied: %+v", res)
	}
	for i, rq := range res.Queries {
		// Re-attach a constraint clause so the parser accepts the
		// rendered refined query (CONSTRAINT goes between FROM and WHERE).
		rendered := strings.Replace(rq.ToSQL(), " WHERE ", " CONSTRAINT SUM(ps_availqty) >= 1 WHERE ", 1)
		q2, err := s.Parse(rendered)
		if err != nil {
			t.Fatalf("answer %d: reparse %q: %v", i, rendered, err)
		}
		actual, err := s.Estimate(q2)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(actual-rq.Aggregate) > 1e-6*(1+rq.Aggregate) {
			t.Errorf("answer %d: re-executed aggregate %v != reported %v\n%s", i, actual, rq.Aggregate, rendered)
		}
	}
}

// TestFrontiersAgreeOnBest: BFS (Algorithm 1), the L∞ layer enumerator
// (Algorithm 2) under an equivalent norm, and the priority frontier
// must all find answers of identical optimal L1/L∞ cost on the same
// problem.
func TestFrontiersAgreeOnBest(t *testing.T) {
	s, err := acq.NewUsersSession(10_000, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	parse := func() *acq.Query {
		q, err := s.Parse(`SELECT * FROM users CONSTRAINT COUNT(*) = 3000
			WHERE age <= 30 AND income <= 60000`)
		if err != nil {
			t.Fatal(err)
		}
		return q
	}

	bfs, err := s.Refine(parse(), acq.Options{Gamma: 10, Delta: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	l2, err := acq.LpNorm(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	prio, err := s.Refine(parse(), acq.Options{Gamma: 10, Delta: 0.05, Norm: l2})
	if err != nil {
		t.Fatal(err)
	}
	linf, err := s.Refine(parse(), acq.Options{Gamma: 10, Delta: 0.05, Norm: acq.LInfNorm(nil)})
	if err != nil {
		t.Fatal(err)
	}
	if !bfs.Satisfied || !prio.Satisfied || !linf.Satisfied {
		t.Fatalf("satisfaction differs: %v %v %v", bfs.Satisfied, prio.Satisfied, linf.Satisfied)
	}
	// The same grid is searched; the best point under each norm must
	// itself satisfy the constraint and be on the grid. Cross-check:
	// BFS's best point evaluated under L2 cannot beat the L2 search's
	// best (and vice versa).
	l2OfBFS := l2.Score(bfs.Best.Scores)
	if l2OfBFS < prio.Best.QScore-1e-9 {
		t.Errorf("L2 search missed a better point: BFS best has L2 %v < %v", l2OfBFS, prio.Best.QScore)
	}
	l1 := acq.L1Norm()
	l1OfPrio := l1.Score(prio.Best.Scores)
	if l1OfPrio < bfs.Best.QScore-1e-9 {
		t.Errorf("BFS missed a better point: L2 best has L1 %v < %v", l1OfPrio, bfs.Best.QScore)
	}
}

// TestFullPipelineWithEverything combines the extensions: a taxonomy
// rewrite, a registered UDA constraint, a weighted norm, and a grid
// index — all in one search.
func TestFullPipelineWithEverything(t *testing.T) {
	s, err := acq.NewUsersSession(15_000, 0, 13)
	if err != nil {
		t.Fatal(err)
	}
	if err := acq.RegisterUDA(acq.UDA{
		Name:  "INTEG_SPEND",
		Map:   func(v float64) float64 { return v },
		Final: func(p acq.Partial) float64 { return p.User },
	}); err != nil && !strings.Contains(err.Error(), "already registered") {
		t.Fatal(err)
	}

	geo := acq.NewTaxonomy("US")
	geo.MustAdd("US", "East")
	geo.MustAdd("US", "West")
	geo.MustAdd("US", "Central")
	for region, cities := range map[string][]string{
		"East": {"Boston", "New York", "Miami"}, "West": {"Seattle", "Portland"},
		"Central": {"Austin", "Chicago", "Denver"},
	} {
		for _, c := range cities {
			geo.MustAdd(region, c)
		}
	}

	q, err := s.Parse(`SELECT * FROM users
		CONSTRAINT INTEG_SPEND(spend) >= 2M
		WHERE location IN ('Boston', 'New York') AND age <= 30`)
	if err != nil {
		t.Fatal(err)
	}
	q, err = s.RewriteCategorical(q, 0, geo)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.BuildGridIndex("users", []string{"age"}, 32); err != nil {
		t.Fatal(err)
	}
	weights := make([]float64, len(q.Dims))
	weights[len(weights)-1] = 2 // discourage taxonomy roll-up
	norm, err := acq.LpNorm(1, weights)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Refine(q, acq.Options{Gamma: 10, Delta: 0.05, Norm: norm})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfied && res.Closest == nil {
		t.Fatalf("pipeline produced nothing: %+v", res)
	}
	if res.Satisfied && res.Best.Aggregate < 2e6*(1-0.05) {
		t.Errorf("aggregate %v below hinge tolerance", res.Best.Aggregate)
	}
}

// TestFailureInjection: evaluation-layer and input failures must
// surface as errors, not panics or silent wrong answers.
func TestFailureInjection(t *testing.T) {
	s, err := acq.NewUsersSession(1000, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Dimension referencing a dropped/unknown column, injected after
	// parse (simulating schema drift between parse and execution).
	q, err := s.Parse(`SELECT * FROM users CONSTRAINT COUNT(*) = 500 WHERE age <= 30`)
	if err != nil {
		t.Fatal(err)
	}
	q.Dims[0].Col.Column = "vanished"
	if _, err := s.Refine(q, acq.Options{}); err == nil {
		t.Error("schema drift: expected error")
	}

	// Constraint aggregate over a TEXT column.
	q2, err := s.Parse(`SELECT * FROM users CONSTRAINT COUNT(*) = 500 WHERE age <= 30`)
	if err != nil {
		t.Fatal(err)
	}
	q2.Constraint = acq.Constraint{Func: acq.AggSum,
		Attr: acq.ColumnRef{Table: "users", Column: "gender"}, Op: acq.CmpGE, Target: 1}
	if _, err := s.Refine(q2, acq.Options{}); err == nil {
		t.Error("SUM over TEXT: expected error")
	}

	// UDA vanishing between SpecFor and Final is impossible through
	// the public API; unknown UDA at parse time must error.
	if _, err := s.RefineSQL(`SELECT * FROM users CONSTRAINT NO_SUCH_UDA(age) = 5 WHERE age <= 30`,
		acq.Options{}); err == nil {
		t.Error("unknown UDA: expected error")
	}
}

// TestDeterminism: identical seeds and options yield identical results,
// including the full answer set and its ordering.
func TestDeterminism(t *testing.T) {
	runOnce := func() *acq.Result {
		s, err := acq.NewUsersSession(8_000, 0, 21)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.RefineSQL(`SELECT * FROM users CONSTRAINT COUNT(*) = 2500
			WHERE age <= 30 AND income <= 60000 AND distance <= 40`,
			acq.Options{Gamma: 15, Delta: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := runOnce(), runOnce()
	if a.Satisfied != b.Satisfied || a.Explored != b.Explored || len(a.Queries) != len(b.Queries) {
		t.Fatalf("nondeterministic result shape: %+v vs %+v", a, b)
	}
	for i := range a.Queries {
		if a.Queries[i].QScore != b.Queries[i].QScore || a.Queries[i].Aggregate != b.Queries[i].Aggregate {
			t.Errorf("answer %d differs across runs", i)
		}
		for j := range a.Queries[i].Scores {
			if a.Queries[i].Scores[j] != b.Queries[i].Scores[j] {
				t.Errorf("answer %d score %d differs", i, j)
			}
		}
	}
}
